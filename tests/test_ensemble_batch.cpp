// Batched multi-RHS ensemble solver: bitwise parity with the single-RHS
// path, per-lane convergence masking edge cases, thread-count determinism,
// and warm starts across pruned/expanded FSP state sets.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/models.hpp"
#include "core/stencil.hpp"
#include "solver/batched.hpp"
#include "solver/jacobi.hpp"
#include "solver/stencil_operator.hpp"
#include "solver/vector_ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cmesolve::solver {
namespace {

using core::State;
using core::StencilTable;

struct ThreadGuard {
  explicit ThreadGuard(int n) { util::set_max_threads(n); }
  ~ThreadGuard() { util::set_max_threads(0); }
};

core::models::ToggleSwitchParams tiny_toggle() {
  core::models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = 8;
  return p;
}

bool bitwise_equal(std::span<const real_t> a, std::span<const real_t> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0;
}

/// Rate variants of the anchor network: lane 0 keeps the compiled rates,
/// later lanes rescale every reaction deterministically.
std::vector<std::vector<real_t>> rate_variants(
    const core::ReactionNetwork& net, int k, std::uint64_t seed = 42) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<real_t>> rates;
  for (int q = 0; q < k; ++q) {
    std::vector<real_t> rk(static_cast<std::size_t>(net.num_reactions()));
    for (int r = 0; r < net.num_reactions(); ++r) {
      const real_t f = q == 0 ? 1.0 : rng.uniform(0.5, 2.0);
      rk[static_cast<std::size_t>(r)] = net.reaction(r).rate * f;
    }
    rates.push_back(std::move(rk));
  }
  return rates;
}

JacobiOptions fast_jacobi() {
  JacobiOptions jopt;
  jopt.eps = 1e-8;
  jopt.max_iterations = 50'000;
  return jopt;
}

void expect_points_bitwise(const EnsembleResult& a, const EnsembleResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t q = 0; q < a.points.size(); ++q) {
    const auto& pa = a.points[q];
    const auto& pb = b.points[q];
    EXPECT_TRUE(bitwise_equal(pa.p, pb.p)) << "point " << q;
    EXPECT_EQ(pa.jacobi.iterations, pb.jacobi.iterations) << "point " << q;
    EXPECT_EQ(pa.jacobi.reason, pb.jacobi.reason) << "point " << q;
    EXPECT_EQ(pa.gmres_used, pb.gmres_used) << "point " << q;
    EXPECT_EQ(pa.converged, pb.converged) << "point " << q;
  }
}

// --- single-RHS equivalence -------------------------------------------------

TEST(EnsembleBatch, K1MatchesDirectSingleRhsSolveBitwise) {
  const auto p = tiny_toggle();
  const auto net = core::models::toggle_switch(p);
  const StencilOperator anchor(net, core::models::toggle_switch_initial(p));
  const auto rates = rate_variants(net, 1);

  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  const auto ens = solve_ensemble(anchor.table(), rates, eopt);
  ASSERT_EQ(ens.points.size(), 1u);
  EXPECT_TRUE(ens.points[0].converged);

  // The direct path an independent script would run: rebind, cache, solve
  // from the uniform-over-active guess.
  core::StencilTable tbl(anchor.table(), rates[0]);
  const StencilOperator op(std::move(tbl), StencilMode::kPropensityCache);
  const auto active = box_active_rows(op.table());
  index_t rows_active = 0;
  for (const auto a : active) rows_active += a;
  std::vector<real_t> x(static_cast<std::size_t>(op.nrows()), 0.0);
  const real_t p0 = 1.0 / static_cast<real_t>(rows_active);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (active[i]) x[i] = p0;
  }
  const auto r = jacobi_solve(op, op.inf_norm(), x, eopt.jacobi);

  EXPECT_TRUE(bitwise_equal(ens.points[0].p, x));
  EXPECT_EQ(ens.points[0].jacobi.iterations, r.iterations);
  EXPECT_EQ(ens.points[0].jacobi.reason, r.reason);
}

TEST(EnsembleBatch, BatchedMatchesSequentialBitwise) {
  const auto p = tiny_toggle();
  const auto net = core::models::toggle_switch(p);
  const StencilOperator anchor(net, core::models::toggle_switch_initial(p));
  const auto rates = rate_variants(net, 4);

  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  eopt.batch_width = 4;
  const auto batched = solve_ensemble(anchor.table(), rates, eopt);
  auto sopt = eopt;
  sopt.batched = false;
  const auto sequential = solve_ensemble(anchor.table(), rates, sopt);

  for (const auto& pt : batched.points) EXPECT_TRUE(pt.converged);
  expect_points_bitwise(batched, sequential);
  EXPECT_EQ(batched.order, sequential.order);
}

TEST(EnsembleBatch, BatchedSolveIsThreadCountInvariant) {
  const auto p = tiny_toggle();
  const auto net = core::models::toggle_switch(p);
  const StencilOperator anchor(net, core::models::toggle_switch_initial(p));
  const auto rates = rate_variants(net, 3);

  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  const auto solve_at = [&](int threads) {
    ThreadGuard guard(threads);
    return solve_ensemble(anchor.table(), rates, eopt);
  };
  const auto e1 = solve_at(1);
  const auto e8 = solve_at(8);
  expect_points_bitwise(e1, e8);
}

// --- convergence masking edge cases -----------------------------------------

// One lane runs out of its iteration budget while its neighbors converge
// and freeze: the frozen lanes' vectors must be exactly what they were at
// their stop, and the still-running lane must be exactly what the
// single-RHS path produces — lanes never perturb each other.
TEST(EnsembleBatch, MixedConvergenceFreezesLanesIndependently) {
  const auto p = tiny_toggle();
  const auto net = core::models::toggle_switch(p);
  const StencilOperator anchor(net, core::models::toggle_switch_initial(p));
  const auto rates = rate_variants(net, 3);

  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  eopt.gmres_fallback = false;
  eopt.continuation = false;  // cold starts: per-lane iterations differ
  const auto full = solve_ensemble(anchor.table(), rates, eopt);
  std::uint64_t lo = full.points[0].jacobi.iterations;
  std::uint64_t hi = lo;
  for (const auto& pt : full.points) {
    lo = std::min(lo, pt.jacobi.iterations);
    hi = std::max(hi, pt.jacobi.iterations);
  }
  ASSERT_LT(lo, hi) << "variants too similar to produce a convergence spread";

  // Cap the budget between the fastest and slowest lane: at least one lane
  // converges (freezes), at least one hits kMaxIterations mid-flight.
  auto copt = eopt;
  copt.jacobi.max_iterations = (lo + hi) / 2;
  const auto batched = solve_ensemble(anchor.table(), rates, copt);
  auto sopt = copt;
  sopt.batched = false;
  const auto sequential = solve_ensemble(anchor.table(), rates, sopt);

  bool saw_converged = false;
  bool saw_maxed = false;
  for (const auto& pt : batched.points) {
    saw_converged = saw_converged || pt.jacobi.reason == StopReason::kConverged;
    saw_maxed = saw_maxed || pt.jacobi.reason == StopReason::kMaxIterations;
  }
  EXPECT_TRUE(saw_converged);
  EXPECT_TRUE(saw_maxed);
  expect_points_bitwise(batched, sequential);
}

// Every lane stops through the stagnation path (a coarse stagnation
// threshold trips after the first couple of residual checks); the GMRES
// fallback then rescues each lane — identically in both modes.
TEST(EnsembleBatch, AllLanesStagnateAndGmresRescues) {
  const auto p = tiny_toggle();
  const auto net = core::models::toggle_switch(p);
  const StencilOperator anchor(net, core::models::toggle_switch_initial(p));
  const auto rates = rate_variants(net, 3);

  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  eopt.jacobi.eps = 1e-15;  // unreachable within the first checks
  // Any residual change within 10x counts as flat: the stagnation patience
  // runs out on the third residual check, long before convergence.
  eopt.jacobi.stagnation_eps = 10.0;
  // The stagnated iterates stop far from the fixed point, so the rescue
  // needs a deeper Krylov space than the default restart.
  eopt.gmres.restart = 64;
  eopt.gmres.max_iterations = 10'000;
  const auto batched = solve_ensemble(anchor.table(), rates, eopt);
  auto sopt = eopt;
  sopt.batched = false;
  const auto sequential = solve_ensemble(anchor.table(), rates, sopt);

  for (const auto& pt : batched.points) {
    EXPECT_EQ(pt.jacobi.reason, StopReason::kStagnated);
    EXPECT_TRUE(pt.gmres_used);
    EXPECT_TRUE(pt.converged);
  }
  expect_points_bitwise(batched, sequential);
}

// Phage lambda's box carries masked rows (derived-count violations): every
// lane must keep exactly zero mass there, and parity must hold through the
// masking.
TEST(EnsembleBatch, MaskedBoxRowsStayZeroInEveryLane) {
  core::models::PhageLambdaParams p;
  p.cap_ci = p.cap_cro = 2;
  p.cap_ci2 = p.cap_cro2 = 1;
  const auto net = core::models::phage_lambda(p);
  const StencilOperator anchor(net, core::models::phage_lambda_initial(p));
  const auto active = box_active_rows(anchor.table());
  index_t masked = 0;
  for (const auto a : active) masked += a == 0;
  ASSERT_GT(masked, 0) << "model no longer exercises masking";

  const auto rates = rate_variants(net, 3);
  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  eopt.jacobi.damping = 0.95;
  const auto batched = solve_ensemble(anchor.table(), rates, eopt);
  auto sopt = eopt;
  sopt.batched = false;
  const auto sequential = solve_ensemble(anchor.table(), rates, sopt);

  for (const auto& pt : batched.points) {
    real_t mass = 0.0;
    for (std::size_t i = 0; i < pt.p.size(); ++i) {
      if (!active[i]) {
        EXPECT_EQ(pt.p[i], 0.0);
      } else {
        mass += pt.p[i];
      }
    }
    EXPECT_NEAR(mass, 1.0, 1e-9);
  }
  expect_points_bitwise(batched, sequential);
}

// --- warm starts across FSP state sets --------------------------------------

// A sweep solved on a pruned (smaller-cap) box warm-starts the same sweep
// on an expanded box via solver::warm_restart's remap contract, and the
// expanded solve keeps batched/sequential parity with the remapped guess.
TEST(EnsembleBatch, WarmStartAcrossExpandedStateSet) {
  auto small = tiny_toggle();
  small.cap_a = small.cap_b = 6;
  auto large = tiny_toggle();
  large.cap_a = large.cap_b = 8;
  const auto net_small = core::models::toggle_switch(small);
  const auto net_large = core::models::toggle_switch(large);
  const StencilOperator anchor_small(
      net_small, core::models::toggle_switch_initial(small));
  const StencilOperator anchor_large(
      net_large, core::models::toggle_switch_initial(large));
  const auto rates = rate_variants(net_small, 2);

  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  const auto pruned = solve_ensemble(anchor_small.table(), rates, eopt);
  ASSERT_TRUE(pruned.points[0].converged);

  // Remap: every small-box row decodes to a state that also lives in the
  // large box.
  const auto& ts = anchor_small.table();
  const auto& tl = anchor_large.table();
  std::vector<index_t> remap(static_cast<std::size_t>(ts.box_rows()));
  State x;
  for (index_t i = 0; i < ts.box_rows(); ++i) {
    ts.decode(i, x);
    remap[static_cast<std::size_t>(i)] = tl.box_index(x);
  }
  auto wopt = eopt;
  wopt.initial_guess.resize(static_cast<std::size_t>(tl.box_rows()));
  warm_restart(pruned.points[0].p, remap, wopt.initial_guess, 0.0);
  wopt.continuation = false;  // both points start from the remapped guess

  const auto batched = solve_ensemble(anchor_large.table(), rates, wopt);
  auto sopt = wopt;
  sopt.batched = false;
  const auto sequential = solve_ensemble(anchor_large.table(), rates, sopt);
  for (const auto& pt : batched.points) EXPECT_TRUE(pt.converged);
  expect_points_bitwise(batched, sequential);
}

// The pruning direction: a large-box solution restricted onto the smaller
// box (dropped states remap to -1) is a valid, parity-preserving guess.
TEST(EnsembleBatch, WarmStartAcrossPrunedStateSet) {
  auto small = tiny_toggle();
  small.cap_a = small.cap_b = 6;
  auto large = tiny_toggle();
  large.cap_a = large.cap_b = 8;
  const auto net_small = core::models::toggle_switch(small);
  const auto net_large = core::models::toggle_switch(large);
  const StencilOperator anchor_small(
      net_small, core::models::toggle_switch_initial(small));
  const StencilOperator anchor_large(
      net_large, core::models::toggle_switch_initial(large));
  const auto rates = rate_variants(net_large, 2);

  EnsembleOptions eopt;
  eopt.jacobi = fast_jacobi();
  const auto full = solve_ensemble(anchor_large.table(), rates, eopt);
  ASSERT_TRUE(full.points[0].converged);

  const auto& ts = anchor_small.table();
  const auto& tl = anchor_large.table();
  std::vector<index_t> remap(static_cast<std::size_t>(tl.box_rows()), -1);
  State x;
  bool dropped = false;
  for (index_t i = 0; i < tl.box_rows(); ++i) {
    tl.decode(i, x);
    bool inside = true;
    for (std::size_t s = 0; s < x.size(); ++s) {
      if (x[s] < 0 || x[s] > 6) inside = false;
    }
    remap[static_cast<std::size_t>(i)] = inside ? ts.box_index(x) : -1;
    dropped = dropped || !inside;
  }
  ASSERT_TRUE(dropped);

  auto wopt = eopt;
  wopt.initial_guess.resize(static_cast<std::size_t>(ts.box_rows()));
  warm_restart(full.points[0].p, remap, wopt.initial_guess, 0.0);
  wopt.continuation = false;

  const auto batched = solve_ensemble(anchor_small.table(), rates, wopt);
  auto sopt = wopt;
  sopt.batched = false;
  const auto sequential = solve_ensemble(anchor_small.table(), rates, sopt);
  for (const auto& pt : batched.points) EXPECT_TRUE(pt.converged);
  expect_points_bitwise(batched, sequential);
}

// --- operator-level masking --------------------------------------------------

TEST(EnsembleBatch, MultiplyActivePartialLanesMatchesFullSweep) {
  const auto p = tiny_toggle();
  const auto net = core::models::toggle_switch(p);
  const StencilOperator anchor(net, core::models::toggle_switch_initial(p));
  const auto rates = rate_variants(net, 4);
  const EnsembleStructure structure(anchor.table());
  const BatchedStencilOperator op(structure, rates);
  const auto n = static_cast<std::size_t>(op.nrows());
  const auto kk = static_cast<std::size_t>(op.batch());

  Xoshiro256 rng(7);
  std::vector<real_t> x(n * kk);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  std::vector<real_t> y_full(n * kk);
  op.multiply(x, y_full);

  const real_t sentinel = -123.25;
  std::vector<real_t> y_part(n * kk, sentinel);
  const std::vector<int> lanes = {0, 2, 3};
  op.multiply_active(x, y_part, lanes);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t q = 0; q < kk; ++q) {
      const std::size_t j = i * kk + q;
      if (q == 1) {
        // The contract: frozen lanes carry zero garbage, never sweep
        // values — the driver must not read them.
        EXPECT_EQ(y_part[j], 0.0) << "frozen lane swept at row " << i;
      } else {
        EXPECT_EQ(y_part[j], y_full[j]) << "lane " << q << " row " << i;
      }
    }
  }

  // The masked sweep is thread-count invariant like the full one.
  std::vector<real_t> y_t1(n * kk, sentinel);
  std::vector<real_t> y_t8(n * kk, sentinel);
  {
    ThreadGuard guard(1);
    op.multiply_active(x, y_t1, lanes);
  }
  {
    ThreadGuard guard(8);
    op.multiply_active(x, y_t8, lanes);
  }
  EXPECT_TRUE(bitwise_equal(y_t1, y_part));
  EXPECT_TRUE(bitwise_equal(y_t8, y_part));
}

TEST(EnsembleBatch, ContinuationOrderIsDeterministicPermutation) {
  const auto p = tiny_toggle();
  const auto net = core::models::toggle_switch(p);
  const auto rates = rate_variants(net, 6);
  const auto order = continuation_order(rates);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 0);  // chain starts at point 0
  std::vector<int> seen(6, 0);
  for (const int q : order) {
    ASSERT_GE(q, 0);
    ASSERT_LT(q, 6);
    ++seen[static_cast<std::size_t>(q)];
  }
  for (const int c : seen) EXPECT_EQ(c, 1);
  EXPECT_EQ(order, continuation_order(rates));
}

}  // namespace
}  // namespace cmesolve::solver
