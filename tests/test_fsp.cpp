// Adaptive-FSP pipeline tests plus the numerical edge-case regressions that
// shipped with it:
//
//   * golden comparison: the adaptive projection on the genetic toggle
//     switch must land within 1e-6 (L1) of the full fixed-buffer solve while
//     enumerating strictly fewer states and honoring its outflow bound;
//   * bit-identical results at 1 and 8 host threads;
//   * ProjectedRateMatrix consistency against the fixed-buffer assembly;
//   * regressions: exact-zero-residual handling in the Jacobi/Gauss-Seidel
//     stagnation logic, Matrix Market robustness (CRLF, interleaved
//     blank/comment lines, index validation, symmetric diagonals), and the
//     binomial overflow guard at large capacities.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "fsp/fsp.hpp"
#include "gpusim/device.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/gmres.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/matrix_market.hpp"
#include "util/binomial.hpp"
#include "util/parallel.hpp"

namespace cmesolve {
namespace {

/// RAII thread-budget override; restores auto-detection on scope exit.
class ThreadBudget {
 public:
  explicit ThreadBudget(int n) { util::set_max_threads(n); }
  ~ThreadBudget() { util::set_max_threads(0); }
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;
};

fsp::FspOptions adaptive_options() {
  fsp::FspOptions opt;
  opt.tol = 1e-9;
  opt.seed_states = 128;
  opt.expansion_quantile = 0.999;
  opt.min_growth = 0.25;
  opt.prune_quantile = 1e-13;
  opt.min_states_to_prune = 512;
  opt.solver = fsp::InnerSolver::kGmres;
  opt.gmres.restart = 80;
  opt.gmres.max_iterations = 30'000;
  opt.gmres.tol = 1e-12;
  return opt;
}

/// Reference landscape on the full finite-buffer enumeration, solved the
/// same way the adaptive rounds are solved (GMRES on the nonsingular-ized
/// system) so the golden comparison is not limited by solver error.
std::vector<real_t> reference_landscape(const core::StateSpace& space) {
  const auto a = core::rate_matrix(space);
  std::vector<real_t> p(static_cast<std::size_t>(space.size()));
  solver::fill_uniform(p);
  solver::GmresOptions gopt;
  gopt.restart = 80;
  gopt.max_iterations = 30'000;
  gopt.tol = 1e-12;
  const auto apply = solver::steady_state_operator(a, 0);
  const auto b = solver::steady_state_rhs(a.nrows, 0);
  (void)solver::gmres_solve(apply, a.nrows, b, p, gopt);
  for (real_t& v : p) v = std::max(v, 0.0);
  solver::normalize_l1(p);
  return p;
}

// --- adaptive pipeline -----------------------------------------------------

TEST(FspAdaptive, GoldenToggleMatchesFixedBufferReference) {
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 30;
  const auto network = core::models::toggle_switch(tp);
  const auto initial = core::models::toggle_switch_initial(tp);

  const core::StateSpace ref(network, initial, 1'000'000);
  const auto p_ref = reference_landscape(ref);

  const auto opt = adaptive_options();
  const auto res = fsp::solve_adaptive(network, initial, opt);

  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.outflow_bound, opt.tol);
  EXPECT_LT(res.space.size(), ref.size());  // strictly fewer states
  EXPECT_LE(fsp::l1_distance_to_reference(res, ref, p_ref), 1e-6);

  // The landscape itself is a probability vector.
  real_t sum = 0.0;
  for (const real_t v : res.p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);

  // Rounds were recorded in order, with the member count actually solved.
  ASSERT_FALSE(res.rounds.empty());
  EXPECT_EQ(res.rounds.front().round, 1);
  EXPECT_EQ(res.rounds.front().states,
            static_cast<index_t>(opt.seed_states));
  EXPECT_LE(res.rounds.back().outflow_bound, opt.tol);
}

TEST(FspAdaptive, DeterministicAcrossThreadCounts) {
  core::models::FutileCycleParams fp;
  fp.substrate_total = 60;
  fp.enzyme1_total = fp.enzyme2_total = 2;
  const auto network = core::models::futile_cycle(fp);
  const auto initial = core::models::futile_cycle_initial(fp);
  const auto opt = adaptive_options();

  const auto solve_at = [&](int threads) {
    ThreadBudget budget(threads);
    return fsp::solve_adaptive(network, initial, opt);
  };
  const auto base = solve_at(1);
  const auto pool = solve_at(8);

  ASSERT_EQ(base.space.size(), pool.space.size());
  ASSERT_EQ(base.rounds.size(), pool.rounds.size());
  EXPECT_EQ(base.converged, pool.converged);
  EXPECT_EQ(base.outflow_bound, pool.outflow_bound);  // bitwise
  for (std::size_t r = 0; r < base.rounds.size(); ++r) {
    EXPECT_EQ(base.rounds[r].states, pool.rounds[r].states);
    EXPECT_EQ(base.rounds[r].added, pool.rounds[r].added);
    EXPECT_EQ(base.rounds[r].pruned, pool.rounds[r].pruned);
    EXPECT_EQ(base.rounds[r].outflow_bound, pool.rounds[r].outflow_bound);
  }
  for (index_t i = 0; i < base.space.size(); ++i) {
    EXPECT_EQ(base.space.state(i), pool.space.state(i));
    EXPECT_EQ(base.p[static_cast<std::size_t>(i)],
              pool.p[static_cast<std::size_t>(i)]);  // bitwise
  }
}

TEST(FspAdaptive, HonorsStateBudget) {
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 30;
  auto opt = adaptive_options();
  opt.tol = 1e-15;  // unreachable within the budget below
  opt.max_states = 300;
  const auto res = fsp::solve_adaptive(core::models::toggle_switch(tp),
                                       core::models::toggle_switch_initial(tp),
                                       opt);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(static_cast<std::size_t>(res.space.size()), opt.max_states);
}

TEST(FspAdaptive, ClosedSpaceConvergesWithJacobiInner) {
  // Seed larger than the reachable space: the set closes, the bound is
  // exactly zero and the Jacobi inner solver is exercised.
  core::models::FutileCycleParams fp;
  fp.substrate_total = 12;
  fp.enzyme1_total = fp.enzyme2_total = 1;
  auto opt = adaptive_options();
  opt.solver = fsp::InnerSolver::kJacobi;
  opt.jacobi.eps = 1e-10;
  opt.jacobi.max_iterations = 500'000;
  opt.prune_quantile = 0.0;  // keep the closed set intact
  opt.seed_states = 100'000;
  const auto res = fsp::solve_adaptive(core::models::futile_cycle(fp),
                                       core::models::futile_cycle_initial(fp),
                                       opt);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.outflow_bound, 0.0);
  EXPECT_EQ(res.rounds.size(), 1u);

  const core::StateSpace ref(core::models::futile_cycle(fp),
                             core::models::futile_cycle_initial(fp),
                             1'000'000);
  EXPECT_EQ(res.space.size(), ref.size());
}

// --- matrix-free inner solves ----------------------------------------------

fsp::FspOptions matrix_free_options() {
  fsp::FspOptions opt;
  opt.tol = 1e-9;
  opt.seed_states = 64;
  opt.min_growth = 0.25;
  opt.prune_quantile = 0.0;
  opt.solver = fsp::InnerSolver::kJacobi;
  opt.jacobi.eps = 1e-11;
  opt.jacobi.damping = 0.9;  // plain Jacobi oscillates on the futile cycle
  opt.jacobi.max_iterations = 500'000;
  opt.matrix_free = true;
  return opt;
}

TEST(FspAdaptive, MatrixFreeInnerSolveMatchesAssembled) {
  core::models::FutileCycleParams fp;
  fp.substrate_total = 20;
  fp.enzyme1_total = fp.enzyme2_total = 1;
  const auto network = core::models::futile_cycle(fp);
  const auto initial = core::models::futile_cycle_initial(fp);

  auto opt = matrix_free_options();
  const auto mf = fsp::solve_adaptive(network, initial, opt);
  opt.matrix_free = false;
  const auto assembled = fsp::solve_adaptive(network, initial, opt);

  EXPECT_TRUE(mf.converged);
  EXPECT_TRUE(assembled.converged);

  // The conservation-reduced box of the futile cycle is barely larger than
  // the reachable space, so every round should have gone matrix-free.
  ASSERT_FALSE(mf.rounds.empty());
  for (const auto& r : mf.rounds) EXPECT_TRUE(r.matrix_free);
  for (const auto& r : assembled.rounds) EXPECT_FALSE(r.matrix_free);

  // Both land on the fixed-buffer reference to solver tolerance.
  const core::StateSpace ref(network, initial, 1'000'000);
  const auto p_ref = reference_landscape(ref);
  EXPECT_LE(fsp::l1_distance_to_reference(mf, ref, p_ref), 1e-6);
  EXPECT_LE(fsp::l1_distance_to_reference(assembled, ref, p_ref), 1e-6);
}

TEST(FspAdaptive, MatrixFreeDeterministicAcrossThreadCounts) {
  core::models::FutileCycleParams fp;
  fp.substrate_total = 20;
  fp.enzyme1_total = fp.enzyme2_total = 1;
  const auto network = core::models::futile_cycle(fp);
  const auto initial = core::models::futile_cycle_initial(fp);
  const auto opt = matrix_free_options();

  const auto solve_at = [&](int threads) {
    ThreadBudget budget(threads);
    return fsp::solve_adaptive(network, initial, opt);
  };
  const auto base = solve_at(1);
  const auto pool = solve_at(8);

  ASSERT_EQ(base.space.size(), pool.space.size());
  ASSERT_EQ(base.rounds.size(), pool.rounds.size());
  EXPECT_EQ(base.outflow_bound, pool.outflow_bound);  // bitwise
  for (index_t i = 0; i < base.space.size(); ++i) {
    EXPECT_EQ(base.space.state(i), pool.space.state(i));
    EXPECT_EQ(base.p[static_cast<std::size_t>(i)],
              pool.p[static_cast<std::size_t>(i)]);  // bitwise
  }
}

// --- projected rate matrix -------------------------------------------------

TEST(ProjectedRateMatrix, MatchesFixedAssemblyOnClosedSpace) {
  core::models::FutileCycleParams fp;
  fp.substrate_total = 20;
  fp.enzyme1_total = fp.enzyme2_total = 1;
  const auto network = core::models::futile_cycle(fp);
  const auto initial = core::models::futile_cycle_initial(fp);

  const core::StateSpace ref(network, initial, 1'000'000);
  const auto a_ref = core::rate_matrix(ref);

  core::DynamicStateSpace space(network, initial);
  space.grow_bfs(1'000'000);  // closes
  ASSERT_EQ(space.size(), ref.size());
  core::ProjectedRateMatrix matrix(network);
  matrix.extend(space);
  const auto assembly = matrix.assemble(space, 0);

  // Closed set: nothing leaks.
  for (const real_t g : assembly.outflow) EXPECT_EQ(g, 0.0);

  // Same generator up to the state orderings: compare the action on a
  // deterministic positive vector through the index mapping.
  std::vector<real_t> x_ref(static_cast<std::size_t>(ref.size()));
  std::vector<real_t> x_dyn(static_cast<std::size_t>(ref.size()));
  for (index_t i = 0; i < ref.size(); ++i) {
    const index_t j = space.find(ref.state(i));
    ASSERT_GE(j, 0);
    const real_t v = 1.0 + 0.5 * std::sin(static_cast<real_t>(i));
    x_ref[static_cast<std::size_t>(i)] = v;
    x_dyn[static_cast<std::size_t>(j)] = v;
  }
  std::vector<real_t> y_ref(x_ref.size());
  std::vector<real_t> y_dyn(x_dyn.size());
  sparse::spmv(a_ref, x_ref, y_ref);
  sparse::spmv(assembly.a, x_dyn, y_dyn);
  for (index_t i = 0; i < ref.size(); ++i) {
    const index_t j = space.find(ref.state(i));
    EXPECT_NEAR(y_ref[static_cast<std::size_t>(i)],
                y_dyn[static_cast<std::size_t>(j)], 1e-12);
  }
}

TEST(ProjectedRateMatrix, RedirectedColumnsSumToZero) {
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 30;
  const auto network = core::models::toggle_switch(tp);
  const auto initial = core::models::toggle_switch_initial(tp);

  core::DynamicStateSpace space(network, initial);
  space.grow_bfs(200);  // open boundary
  core::ProjectedRateMatrix matrix(network);
  matrix.extend(space);
  const auto assembly = matrix.assemble(space, 0);

  real_t leaked = 0.0;
  for (const real_t g : assembly.outflow) {
    EXPECT_GE(g, 0.0);
    leaked += g;
  }
  EXPECT_GT(leaked, 0.0);  // the truncation really cuts flux

  // The redirected generator is a proper CTMC: every column sums to zero.
  std::vector<real_t> colsum(static_cast<std::size_t>(assembly.a.ncols));
  for (index_t r = 0; r < assembly.a.nrows; ++r) {
    for (index_t p = assembly.a.row_ptr[r]; p < assembly.a.row_ptr[r + 1];
         ++p) {
      colsum[static_cast<std::size_t>(assembly.a.col_idx[p])] +=
          assembly.a.val[static_cast<std::size_t>(p)];
    }
  }
  for (const real_t s : colsum) EXPECT_NEAR(s, 0.0, 1e-12);
}

// --- regression: exact-zero residual in the stagnation logic ---------------

sparse::Csr two_state_exchange() {
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, -1.0);
  c.add(1, 0, 1.0);
  c.add(0, 1, 1.0);
  c.add(1, 1, -1.0);
  return sparse::csr_from_coo(c);
}

TEST(SolverZeroResidualRegression, JacobiStopsAsConvergedNotMaxIterations) {
  // Start from the exact steady state so ||r||_inf == 0 at the first check.
  // eps < 0 disables the threshold test (stagnation-only stopping): before
  // the guard, the zero residual turned the relative-change quotient into
  // 0/0 = NaN, no stop ever fired, and the solve burned max_iterations.
  const auto a = two_state_exchange();
  const solver::CsrDiaOperator op(a);
  std::vector<real_t> x = {0.5, 0.5};
  solver::JacobiOptions opt;
  opt.eps = -1.0;
  opt.check_every = 1;
  opt.normalize_every = 0;
  opt.max_iterations = 1000;
  const auto r = solver::jacobi_solve(op, a.inf_norm(), x, opt);
  EXPECT_EQ(r.reason, solver::StopReason::kConverged);
  EXPECT_EQ(r.residual, 0.0);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_TRUE(std::isfinite(r.residual));
  EXPECT_DOUBLE_EQ(x[0], 0.5);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
}

TEST(SolverZeroResidualRegression, GaussSeidelCarriesTheSameGuard) {
  const auto a = two_state_exchange();
  std::vector<real_t> x = {0.5, 0.5};
  solver::JacobiOptions opt;
  opt.eps = -1.0;
  opt.check_every = 1;
  opt.normalize_every = 0;
  opt.max_iterations = 1000;
  const auto r = solver::gauss_seidel_solve(a, a.inf_norm(), x, opt);
  EXPECT_EQ(r.reason, solver::StopReason::kConverged);
  EXPECT_EQ(r.residual, 0.0);
  EXPECT_EQ(r.iterations, 1u);
}

TEST(SolverZeroResidualRegression, GpuJacobiInheritsTheGuard) {
  const auto a = two_state_exchange();
  const auto dev = gpusim::DeviceSpec::gtx580();
  std::vector<real_t> x = {0.5, 0.5};
  solver::JacobiOptions opt;
  opt.eps = -1.0;
  opt.check_every = 1;
  opt.normalize_every = 0;
  opt.max_iterations = 1000;
  const auto r = solver::gpu_jacobi_solve(dev, a, x, opt);
  EXPECT_EQ(r.result.reason, solver::StopReason::kConverged);
  EXPECT_EQ(r.result.residual, 0.0);
  EXPECT_EQ(r.result.iterations, 1u);
  EXPECT_GT(r.sim_seconds, 0.0);
}

// --- regression: Matrix Market robustness ----------------------------------

TEST(MatrixMarketRegression, CrlfLineEndingsParse) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "2 2 2\r\n"
      "1 1 1.5\r\n"
      "2 2 -2.5\r\n");
  const auto m = sparse::read_matrix_market(in);
  EXPECT_EQ(m.nrows, 2);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), -2.5);
}

TEST(MatrixMarketRegression, BlankAndCommentLinesAnywhere) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "\n"
      "% size next\n"
      "3 3 3\n"
      "\n"
      "1 1 1.0\n"
      "% interleaved comment\n"
      "2 2 2.0\n"
      "\n"
      "3 3 3.0\n");
  const auto m = sparse::read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 3.0);
}

TEST(MatrixMarketRegression, IndexValidationAgainstDeclaredDims) {
  const auto expect_throw = [](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW((void)sparse::read_matrix_market(in), std::runtime_error)
        << text;
  };
  // 0 is invalid in a 1-based format; entries past the declared dims too.
  expect_throw(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n");
  expect_throw(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 0 1.0\n");
  expect_throw(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 3 1.0\n");
  expect_throw(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
}

TEST(MatrixMarketRegression, SymmetricDiagonalNotDuplicated) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 4.0\n"
      "2 1 -1.0\n");
  const auto m = sparse::read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3u);  // (1,1), (2,1) and its mirror — not 4
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);  // not 8.0
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
}

// --- regression: binomial overflow guard -----------------------------------

TEST(BinomialRegression, LargeCapacityStaysFinite) {
  // C(1024, 512) ~ 4.48e306 is representable, but the multiply-first
  // recurrence overflowed its intermediate (result * factor ~ 2.3e309)
  // to inf. The guard reorders to divide-first exactly at the boundary.
  const real_t v = binomial(1024, 512);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 4.4e306);
  EXPECT_LT(v, 4.6e306);

  // Cross-check against lgamma within floating tolerance.
  const real_t lg = std::lgamma(1025.0) - 2.0 * std::lgamma(513.0);
  EXPECT_NEAR(std::log(v), lg, 1e-9);
}

TEST(BinomialRegression, SmallValuesStayExact) {
  EXPECT_DOUBLE_EQ(binomial(52, 5), 2598960.0);
  EXPECT_DOUBLE_EQ(binomial(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 7), 0.0);
}

}  // namespace
}  // namespace cmesolve
