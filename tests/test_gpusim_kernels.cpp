// Tests for the kernel simulations: functional equivalence with the CPU
// reference kernels, plus the performance-model properties the paper's
// tables rely on.
#include <gtest/gtest.h>

#include "gpusim/clspmv_model.hpp"
#include "gpusim/kernels.hpp"
#include "sparse/dense.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/rng.hpp"

namespace cmesolve::gpusim {
namespace {

using sparse::Coo;
using sparse::Csr;
using sparse::csr_from_coo;

Csr cme_like_matrix(index_t n, index_t extra, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo c;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    c.add(r, r, rng.uniform(-6, -3));
    if (r > 0) c.add(r, r - 1, rng.uniform(0.5, 1.5));
    if (r < n - 1) c.add(r, r + 1, rng.uniform(0.5, 1.5));
    const auto len = rng.bounded(static_cast<std::uint64_t>(extra) + 1);
    for (std::uint64_t j = 0; j < len; ++j) {
      c.add(r, static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n))),
            rng.uniform(0.1, 0.9));
    }
  }
  return csr_from_coo(std::move(c));
}

std::vector<real_t> probe_vector(index_t n) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[i] = 1.0 + 0.001 * static_cast<real_t>(i % 997);
  }
  return x;
}

class KernelFunctional : public ::testing::TestWithParam<index_t> {};

TEST_P(KernelFunctional, AllKernelsComputeTheCsrResult) {
  const index_t n = GetParam();
  const Csr m = cme_like_matrix(n, 4, 1234 + static_cast<std::uint64_t>(n));
  const auto x = probe_vector(n);
  std::vector<real_t> expect(static_cast<std::size_t>(n));
  sparse::spmv(m, x, expect);

  const auto dev = DeviceSpec::gtx580();
  const auto check = [&](const KernelStats& stats, std::span<const real_t> y,
                         const char* name) {
    EXPECT_GT(stats.seconds, 0.0) << name;
    EXPECT_GT(stats.gflops, 0.0) << name;
    for (index_t i = 0; i < n; ++i) {
      ASSERT_NEAR(y[i], expect[i], 1e-11) << name << " row " << i;
    }
  };

  std::vector<real_t> y(static_cast<std::size_t>(n));

  check(simulate_spmv(dev, sparse::ell_from_csr(m), x, y), y, "ell");
  check(simulate_spmv(dev, sparse::sliced_ell_from_csr(m, 256), x, y), y,
        "sliced");
  check(simulate_spmv(dev, sparse::warped_ell_from_csr(m), x, y), y, "warped");
  check(simulate_spmv(dev, sparse::pjds_from_csr(m), x, y), y, "pjds");
  check(simulate_spmv(dev, m, x, y), y, "csr");
  check(simulate_spmv(dev,
                      sparse::ell_dia_from_csr(m, sparse::select_band_offsets(m)),
                      x, y),
        y, "ell+dia");
  check(simulate_spmv(dev, sparse::sliced_ell_dia_from_csr(m, {-1, 0, 1}), x, y),
        y, "warped+dia");

  // The pure DIA kernel only covers the band; compare against its own
  // reference multiply.
  const auto band = sparse::dia_from_csr(m, {-1, 0, 1});
  std::vector<real_t> band_expect(static_cast<std::size_t>(n));
  sparse::spmv(band, x, band_expect);
  std::vector<real_t> band_y(static_cast<std::size_t>(n));
  const auto band_stats = simulate_spmv(dev, band, x, band_y);
  EXPECT_GT(band_stats.gflops, 0.0);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_NEAR(band_y[i], band_expect[i], 1e-11) << "dia row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelFunctional,
                         ::testing::Values(1, 31, 32, 33, 100, 257, 1000),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(KernelSim, JacobiSweepMatchesOperatorMath) {
  const index_t n = 500;
  const Csr m = cme_like_matrix(n, 3, 77);
  const auto hybrid = sparse::sliced_ell_dia_from_csr(m, {-1, 0, 1});
  const auto x = probe_vector(n);

  // Expected: x_out = -(1/a_ii) sum_{j != i} a_ij x_j.
  std::vector<real_t> full(static_cast<std::size_t>(n));
  sparse::spmv(m, x, full);
  std::vector<real_t> expect(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    expect[i] = -(full[i] - m.at(i, i) * x[i]) / m.at(i, i);
  }

  std::vector<real_t> x_out(static_cast<std::size_t>(n));
  const auto stats =
      simulate_jacobi_sweep(DeviceSpec::gtx580(), hybrid, x, x_out);
  EXPECT_GT(stats.gflops, 0.0);
  for (index_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x_out[i], expect[i], 1e-11) << i;
  }
}

// --- performance-model properties ------------------------------------------------

TEST(KernelPerf, PaddingWasteSlowsEll) {
  // Same nonzeros, but one long row inflates k: plain ELL must slow down
  // while warped ELL barely notices.
  const index_t n = 20000;
  Coo regular;
  regular.nrows = regular.ncols = n;
  Coo skewed = regular;
  for (index_t r = 0; r < n; ++r) {
    for (index_t j = 0; j < 4; ++j) {
      regular.add(r, (r + j) % n, 1.0);
      skewed.add(r, (r + j) % n, 1.0);
    }
  }
  for (index_t j = 4; j < 24; ++j) skewed.add(0, j, 1.0);
  const Csr m_reg = csr_from_coo(std::move(regular));
  const Csr m_skew = csr_from_coo(std::move(skewed));

  const auto dev = DeviceSpec::gtx580();
  const auto x = probe_vector(n);
  std::vector<real_t> y(static_cast<std::size_t>(n));

  const auto ell_reg = simulate_spmv(dev, sparse::ell_from_csr(m_reg), x, y);
  const auto ell_skew = simulate_spmv(dev, sparse::ell_from_csr(m_skew), x, y);
  EXPECT_GT(ell_skew.seconds, 2.0 * ell_reg.seconds)
      << "global k inflation must hurt plain ELL";

  const auto warp_skew =
      simulate_spmv(dev, sparse::warped_ell_from_csr(m_skew), x, y);
  EXPECT_LT(warp_skew.seconds, 1.2 * ell_reg.seconds)
      << "warp-grained slices must contain the damage";
}

TEST(KernelPerf, BlockSize256BeatsWarpSizedBlocks) {
  const Csr m = cme_like_matrix(20000, 3, 5);
  const auto x = probe_vector(m.ncols);
  std::vector<real_t> y(static_cast<std::size_t>(m.nrows));
  const auto dev = DeviceSpec::gtx580();
  SimOptions b256;
  SimOptions b32;
  b32.block_size = 32;
  const auto fmt = sparse::ell_from_csr(m);
  const auto t256 = simulate_spmv(dev, fmt, x, y, b256);
  const auto t32 = simulate_spmv(dev, fmt, x, y, b32);
  EXPECT_GT(t32.seconds, 2.0 * t256.seconds);
}

TEST(KernelPerf, SinglePrecisionMovesFewerBytes) {
  const Csr m = cme_like_matrix(20000, 3, 6);
  const auto x = probe_vector(m.ncols);
  std::vector<real_t> y(static_cast<std::size_t>(m.nrows));
  const auto dev = DeviceSpec::gtx580();
  SimOptions dp;
  SimOptions sp;
  sp.value_bytes = 4;
  const auto fmt = sparse::ell_from_csr(m);
  const auto tdp = simulate_spmv(dev, fmt, x, y, dp);
  const auto tsp = simulate_spmv(dev, fmt, x, y, sp);
  EXPECT_LT(tsp.traffic.dram_bytes, tdp.traffic.dram_bytes);
  EXPECT_LT(tsp.seconds, tdp.seconds);
}

TEST(KernelPerf, RandomOrderingDestroysLocalityAtScale) {
  // x well beyond the 768 KB L2: scattered gathers become DRAM traffic.
  const Csr m = cme_like_matrix(250000, 2, 7);
  const auto x = probe_vector(m.ncols);
  std::vector<real_t> y(static_cast<std::size_t>(m.nrows));
  const auto dev = DeviceSpec::gtx580();
  const auto local = simulate_spmv(
      dev, sparse::sliced_ell_from_csr(m, 32, sparse::Reordering::kLocal), x, y);
  const auto random = simulate_spmv(
      dev, sparse::sliced_ell_from_csr(m, 32, sparse::Reordering::kRandom), x,
      y);
  EXPECT_GT(random.seconds, 1.4 * local.seconds);
}

TEST(KernelPerf, VectorOpScalesWithStreams) {
  const auto dev = DeviceSpec::gtx580();
  const auto one = simulate_vector_op(dev, 1 << 20, 1, 0);
  const auto three = simulate_vector_op(dev, 1 << 20, 2, 1);
  EXPECT_GT(three.seconds, 2.0 * (one.seconds - dev.launch_overhead) +
                               dev.launch_overhead);
}

TEST(KernelPerf, KeplerOutrunsFermi) {
  const Csr m = cme_like_matrix(30000, 3, 8);
  const auto x = probe_vector(m.ncols);
  std::vector<real_t> y(static_cast<std::size_t>(m.nrows));
  const auto fmt = sparse::warped_ell_from_csr(m);
  const auto fermi = simulate_spmv(DeviceSpec::gtx580(), fmt, x, y);
  const auto kepler = simulate_spmv(DeviceSpec::kepler_k20(), fmt, x, y);
  EXPECT_GT(kepler.gflops, fermi.gflops);
}

TEST(CsrVector, FunctionalEquivalence) {
  for (index_t n : {1, 33, 500}) {
    const Csr m = cme_like_matrix(n, 5, 99 + static_cast<std::uint64_t>(n));
    const auto x = probe_vector(n);
    std::vector<real_t> expect(static_cast<std::size_t>(n));
    sparse::spmv(m, x, expect);
    std::vector<real_t> y(static_cast<std::size_t>(n));
    const auto stats =
        simulate_spmv_csr_vector(DeviceSpec::gtx580(), m, x, y);
    EXPECT_GT(stats.gflops, 0.0);
    for (index_t i = 0; i < n; ++i) {
      ASSERT_NEAR(y[i], expect[i], 1e-11) << "n=" << n << " row " << i;
    }
  }
}

TEST(CsrVector, BeatsScalarCsrOnLongRows) {
  // Wide rows: the scalar kernel's per-lane pointer chase scatters every
  // access, the vector kernel coalesces them.
  Coo c;
  const index_t n = 4000;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    for (index_t j = 0; j < 64; ++j) c.add(r, (r * 7 + j) % n, 1.0);
  }
  const Csr m = csr_from_coo(std::move(c));
  const auto x = probe_vector(n);
  std::vector<real_t> y(static_cast<std::size_t>(n));
  const auto dev = DeviceSpec::gtx580();
  const auto scalar = simulate_spmv(dev, m, x, y);
  const auto vec = simulate_spmv_csr_vector(dev, m, x, y);
  EXPECT_LT(vec.seconds, scalar.seconds);
}

// --- clSpMV comparator -------------------------------------------------------------

TEST(ClSpmv, PicksACandidateAndNormalizes) {
  const Csr m = cme_like_matrix(20000, 3, 9);
  const auto r = clspmv_autotune(DeviceSpec::gtx580(), m);
  EXPECT_FALSE(r.chosen.empty());
  EXPECT_GT(r.single_gflops, 0.0);
  EXPECT_NEAR(r.normalized_gflops, r.single_gflops * 8.0 / 12.0, 1e-9);
}

TEST(ClSpmv, WarpedEllBeatsItOnCmeMatrices) {
  // The paper's headline Table III claim.
  const Csr m = cme_like_matrix(30000, 4, 10);
  const auto dev = DeviceSpec::gtx580();
  const auto x = probe_vector(m.ncols);
  std::vector<real_t> y(static_cast<std::size_t>(m.nrows));
  const auto warped = simulate_spmv(dev, sparse::warped_ell_from_csr(m), x, y);
  const auto cl = clspmv_autotune(dev, m);
  EXPECT_GT(warped.gflops, cl.normalized_gflops);
}

}  // namespace
}  // namespace cmesolve::gpusim
