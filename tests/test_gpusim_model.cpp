// Unit tests for the GPU performance model: cache, occupancy, timing
// calibration and the memory event engine.
#include <gtest/gtest.h>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "gpusim/memory_sim.hpp"
#include "gpusim/occupancy.hpp"

namespace cmesolve::gpusim {
namespace {

// --- CacheModel -------------------------------------------------------------

TEST(Cache, ColdMissThenHit) {
  CacheModel c(1024, 2, 128);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same 128-byte line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DistinctLinesMiss) {
  CacheModel c(1024, 2, 128);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_FALSE(c.access(256));
}

TEST(Cache, LruEvictionWithinSet) {
  // 1024 B / 128 B lines / 2 ways = 4 sets. Lines 0, 4, 8 share set 0.
  CacheModel c(1024, 2, 128);
  const auto addr = [](std::uint64_t line) { return line * 128; };
  EXPECT_FALSE(c.access(addr(0)));
  EXPECT_FALSE(c.access(addr(4)));
  EXPECT_TRUE(c.access(addr(0)));   // refresh line 0: line 4 is now LRU
  EXPECT_FALSE(c.access(addr(8)));  // evicts line 4
  EXPECT_TRUE(c.access(addr(0)));
  EXPECT_FALSE(c.access(addr(4)));  // line 4 was evicted
}

TEST(Cache, FullCapacityRetained) {
  CacheModel c(48 * 1024, 6, 128);  // 384 lines
  for (std::uint64_t line = 0; line < 384; ++line) {
    EXPECT_FALSE(c.access(line * 128));
  }
  for (std::uint64_t line = 0; line < 384; ++line) {
    EXPECT_TRUE(c.access(line * 128)) << line;
  }
}

TEST(Cache, ResetClears) {
  CacheModel c(1024, 2, 128);
  (void)c.access(0);
  c.reset();
  EXPECT_EQ(c.hits() + c.misses(), 0u);
  EXPECT_FALSE(c.access(0));
}

// --- occupancy ---------------------------------------------------------------

TEST(Occupancy, Gtx580ReferencePoints) {
  const auto dev = DeviceSpec::gtx580();
  // Sec. III: b=256 -> 6 blocks = 1536 threads (full); b=512 -> 3 blocks
  // (full); b=1024 -> 1 block (2/3); b=32 -> 8-block cap = 256 threads (1/6).
  EXPECT_EQ(occupancy(dev, 256).blocks_per_sm, 6);
  EXPECT_DOUBLE_EQ(occupancy(dev, 256).fraction, 1.0);
  EXPECT_EQ(occupancy(dev, 512).blocks_per_sm, 3);
  EXPECT_DOUBLE_EQ(occupancy(dev, 512).fraction, 1.0);
  EXPECT_EQ(occupancy(dev, 1024).blocks_per_sm, 1);
  EXPECT_NEAR(occupancy(dev, 1024).fraction, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(occupancy(dev, 32).blocks_per_sm, 8);
  EXPECT_NEAR(occupancy(dev, 32).fraction, 1.0 / 6.0, 1e-12);
  EXPECT_EQ(occupancy(dev, 32).threads_per_sm, 256);
}

TEST(Occupancy, OversizedBlockDoesNotFit) {
  const auto dev = DeviceSpec::gtx580();
  EXPECT_EQ(occupancy(dev, 2048).blocks_per_sm, 0);
}

TEST(Occupancy, BandwidthEfficiencySaturates) {
  const auto dev = DeviceSpec::gtx580();
  EXPECT_DOUBLE_EQ(bandwidth_efficiency(dev, 1.0), 1.0);
  EXPECT_LT(bandwidth_efficiency(dev, 1.0 / 6.0), 0.3);
  EXPECT_GT(bandwidth_efficiency(dev, 1.0 / 6.0), 0.1);
}

TEST(Occupancy, BlockShapePenaltyFavors256) {
  const auto dev = DeviceSpec::gtx580();
  const real_t p256 = block_shape_penalty(dev, 256);
  EXPECT_LT(p256, block_shape_penalty(dev, 64));
  EXPECT_LT(p256, block_shape_penalty(dev, 1024));
}

// --- AddressSpace ----------------------------------------------------------------

TEST(AddressSpace, AllocationsAlignedAndDisjoint) {
  AddressSpace as;
  const auto a = as.alloc(100);
  const auto b = as.alloc(100);
  EXPECT_EQ(a % 128, 0u);
  EXPECT_EQ(b % 128, 0u);
  EXPECT_GE(b, a + 100);
}

// --- MemorySim --------------------------------------------------------------------

TEST(MemorySim, StreamLoadCountsWholeLines) {
  MemorySim sim(DeviceSpec::gtx580());
  sim.begin_pass();
  sim.stream_load(0, 256);  // exactly 2 lines
  EXPECT_EQ(sim.counters().dram_bytes, 256u);
  sim.stream_load(1000, 8);  // 8 bytes still cost a 128-byte transaction
  EXPECT_EQ(sim.counters().dram_bytes, 384u);
}

TEST(MemorySim, GatherDeduplicatesLines) {
  MemorySim sim(DeviceSpec::gtx580());
  sim.begin_pass();
  std::vector<std::uint64_t> addrs;
  for (int lane = 0; lane < 32; ++lane) addrs.push_back(lane * 8);  // 2 lines
  sim.gather(addrs, 8);
  EXPECT_EQ(sim.counters().l1_misses, 2u);
  sim.gather(addrs, 8);  // warm
  EXPECT_EQ(sim.counters().l1_hits, 2u);
  EXPECT_EQ(sim.counters().l1_misses, 2u);
}

TEST(MemorySim, GatherMissesGoThroughL2ToDram) {
  MemorySim sim(DeviceSpec::gtx580());
  sim.begin_pass();
  const std::uint64_t addr = 1 << 20;
  sim.gather(std::vector<std::uint64_t>{addr}, 8);
  EXPECT_EQ(sim.counters().l2_misses, 1u);
  EXPECT_EQ(sim.counters().dram_bytes, 128u);
  // A different SM's L1 misses but the shared L2 hits.
  sim.set_active_sm(3);
  sim.gather(std::vector<std::uint64_t>{addr}, 8);
  EXPECT_EQ(sim.counters().l1_misses, 2u);
  EXPECT_EQ(sim.counters().l2_hits, 1u);
  EXPECT_EQ(sim.counters().dram_bytes, 128u);  // unchanged
}

TEST(MemorySim, L1DisabledRoutesToL2) {
  MemorySim sim(DeviceSpec::gtx580(), /*l1_enabled=*/false);
  sim.begin_pass();
  const std::uint64_t addr = 4096;
  sim.gather(std::vector<std::uint64_t>{addr}, 8);
  sim.gather(std::vector<std::uint64_t>{addr}, 8);
  EXPECT_EQ(sim.counters().l1_hits, 0u);
  EXPECT_EQ(sim.counters().l2_hits, 1u);
}

TEST(MemorySim, WriteBackChargesDirtyLinesOncePerPass) {
  MemorySim sim(DeviceSpec::gtx580());
  sim.begin_pass();
  // Two scattered stores hitting the same line: one write-back.
  std::vector<std::uint64_t> w1{0};
  std::vector<std::uint64_t> w2{64};
  sim.scatter_store(w1, 8);
  sim.scatter_store(w2, 8);
  const auto stats = sim.finalize(256, 1);
  EXPECT_EQ(stats.traffic.dram_bytes, 128u);
}

TEST(MemorySim, ScatterTransactionsPerSegment) {
  MemorySim sim(DeviceSpec::gtx580());
  sim.begin_pass();
  // 32 lanes, stride 64 bytes: 32 distinct 32-byte segments.
  std::vector<std::uint64_t> addrs;
  for (int lane = 0; lane < 32; ++lane) addrs.push_back(lane * 64);
  sim.scatter_store(addrs, 8);
  EXPECT_EQ(sim.counters().transactions, 32u);
  // Contiguous warp store: 256 bytes = 8 segments.
  sim.begin_pass();
  sim.stream_store(0, 256);
  EXPECT_EQ(sim.counters().transactions, 8u);
}

TEST(MemorySim, FinalizeTimingMonotoneInTraffic) {
  const auto dev = DeviceSpec::gtx580();
  MemorySim sim(dev);
  sim.begin_pass();
  sim.stream_load(0, 1 << 20);
  const auto t1 = sim.finalize(256, 1000);
  sim.begin_pass();
  sim.stream_load(0, 2 << 20);
  const auto t2 = sim.finalize(256, 1000);
  EXPECT_GT(t2.seconds, t1.seconds);
  EXPECT_GT(t1.seconds, dev.launch_overhead);
}

TEST(MemorySim, LowOccupancySlowsKernel) {
  const auto dev = DeviceSpec::gtx580();
  MemorySim sim(dev);
  sim.begin_pass();
  sim.stream_load(0, 16 << 20);
  const auto full = sim.finalize(256, 1000);
  const auto low = sim.finalize(32, 1000);
  EXPECT_GT(low.seconds, 2.0 * full.seconds);
}

TEST(MemorySim, RooflineMatchesBandwidth) {
  // Pure streaming at full occupancy: time ~= bytes / BW + launch overhead.
  const auto dev = DeviceSpec::gtx580();
  MemorySim sim(dev);
  sim.begin_pass();
  const std::size_t bytes = 192 << 20;
  sim.stream_load(0, bytes);
  const auto s = sim.finalize(256, 1);
  const real_t ideal = static_cast<real_t>(bytes) / dev.dram_bandwidth;
  EXPECT_NEAR(s.seconds, ideal, 0.05 * ideal);
}

// --- device descriptors -------------------------------------------------------------

TEST(Device, Gtx580Parameters) {
  const auto dev = DeviceSpec::gtx580();
  EXPECT_EQ(dev.num_sms, 16);
  EXPECT_EQ(dev.warp_size, 32);
  EXPECT_EQ(dev.max_threads_per_sm, 1536);
  EXPECT_EQ(dev.max_blocks_per_sm, 8);
  EXPECT_DOUBLE_EQ(dev.dram_bandwidth, 192.0e9);
  EXPECT_EQ(DeviceSpec::gtx580(16 * 1024).l1_bytes, 16u * 1024u);
}

TEST(Device, KeplerIsBeefier) {
  const auto fermi = DeviceSpec::gtx580();
  const auto kepler = DeviceSpec::kepler_k20();
  EXPECT_GT(kepler.dram_bandwidth, fermi.dram_bandwidth);
  EXPECT_GT(kepler.dp_peak_flops, fermi.dp_peak_flops);
  EXPECT_GT(kepler.l2_bytes, fermi.l2_bytes);
}

}  // namespace
}  // namespace cmesolve::gpusim
