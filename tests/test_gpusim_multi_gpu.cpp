// Tests for the multi-GPU row-partitioned Jacobi sweep model.
#include <gtest/gtest.h>

#include <limits>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "gpusim/multi_gpu.hpp"
#include "sparse/hybrid.hpp"

namespace cmesolve::gpusim {
namespace {

sparse::Csr toggle_matrix(std::int32_t cap) {
  core::models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = cap;
  const auto net = core::models::toggle_switch(p);
  const core::StateSpace space(net, core::models::toggle_switch_initial(p),
                               1'000'000);
  return core::rate_matrix(space);
}

std::vector<real_t> probe(index_t n) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) x[i] = 1.0 + 0.001 * (i % 913);
  return x;
}

TEST(MultiGpu, FunctionalEquivalenceWithSingleDevice) {
  const auto a = toggle_matrix(20);
  const auto x = probe(a.nrows);

  std::vector<real_t> single(static_cast<std::size_t>(a.nrows));
  const auto hybrid = sparse::sliced_ell_dia_from_csr(a, {-1, 0, 1});
  (void)simulate_jacobi_sweep(DeviceSpec::gtx580(), hybrid, x, single);

  for (int g : {1, 2, 3, 4, 7}) {
    std::vector<real_t> multi(static_cast<std::size_t>(a.nrows), -1.0);
    MultiGpuOptions opt;
    opt.num_gpus = g;
    (void)simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a, x, multi,
                                          opt);
    for (index_t i = 0; i < a.nrows; ++i) {
      ASSERT_NEAR(multi[i], single[i], 1e-11) << "g=" << g << " row " << i;
    }
  }
}

TEST(MultiGpu, HaloIsSmallForChainStructuredModels) {
  // Pure chain networks keep every column within a narrow band of the
  // diagonal, so naive 1-D partitioning has a tiny halo.
  core::models::BrusselatorParams p;
  p.cap_x = 120;
  p.cap_y = 60;
  const auto net = core::models::brusselator(p);
  const core::StateSpace space(net, core::models::brusselator_initial(p),
                               1'000'000);
  const auto a = core::rate_matrix(space);
  const auto x = probe(a.nrows);
  std::vector<real_t> out(static_cast<std::size_t>(a.nrows));
  MultiGpuOptions opt;
  opt.num_gpus = 4;
  const auto report =
      simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a, x, out, opt);
  ASSERT_EQ(report.partitions.size(), 4u);
  for (const auto& part : report.partitions) {
    const index_t rows = part.row_end - part.row_begin;
    EXPECT_LT(part.halo_in, static_cast<std::size_t>(rows) / 4)
        << "chain-model halo should be << block size";
  }
}

TEST(MultiGpu, OperatorFlipModelsHaveLargeHalo) {
  // Gene-state flips jump across quadrants of the DFS order: the toggle
  // switch communicates a large share of x under naive 1-D partitioning —
  // the quantified caveat of the scale-out direction.
  const auto a = toggle_matrix(25);
  const auto x = probe(a.nrows);
  std::vector<real_t> out(static_cast<std::size_t>(a.nrows));
  MultiGpuOptions opt;
  opt.num_gpus = 4;
  const auto report =
      simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a, x, out, opt);
  std::size_t max_halo = 0;
  for (const auto& part : report.partitions) {
    max_halo = std::max(max_halo, part.halo_in);
  }
  EXPECT_GT(max_halo, static_cast<std::size_t>(a.nrows) / 16);
}

TEST(MultiGpu, SpeedupIsPositiveAndBounded) {
  core::models::BrusselatorParams bp;
  bp.cap_x = 300;
  bp.cap_y = 150;
  const auto net = core::models::brusselator(bp);
  const core::StateSpace space(net, core::models::brusselator_initial(bp),
                               1'000'000);
  const auto a = core::rate_matrix(space);
  const auto x = probe(a.nrows);
  std::vector<real_t> out(static_cast<std::size_t>(a.nrows));
  real_t prev_time = std::numeric_limits<real_t>::infinity();
  for (int g : {1, 2, 4}) {
    MultiGpuOptions opt;
    opt.num_gpus = g;
    const auto report =
        simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a, x, out, opt);
    EXPECT_GT(report.speedup_vs_single, 0.0);
    EXPECT_LE(report.speedup_vs_single, static_cast<real_t>(g) + 0.1);
    EXPECT_LE(report.seconds_per_iteration, prev_time * 1.05)
        << "more devices should not be much slower at g=" << g;
    prev_time = report.seconds_per_iteration;
  }
}

TEST(MultiGpu, CommunicationGrowsWithSlowerLink) {
  const auto a = toggle_matrix(20);
  const auto x = probe(a.nrows);
  std::vector<real_t> out(static_cast<std::size_t>(a.nrows));
  MultiGpuOptions fast;
  fast.num_gpus = 4;
  MultiGpuOptions slow = fast;
  slow.link_bandwidth = 1e8;
  slow.link_latency = 1e-3;
  const auto r_fast =
      simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a, x, out, fast);
  const auto r_slow =
      simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a, x, out, slow);
  EXPECT_GT(r_slow.comm_seconds, r_fast.comm_seconds);
  EXPECT_DOUBLE_EQ(r_slow.compute_seconds, r_fast.compute_seconds);
}

TEST(MultiGpu, SingleDeviceHasNoCommunication) {
  const auto a = toggle_matrix(15);
  const auto x = probe(a.nrows);
  std::vector<real_t> out(static_cast<std::size_t>(a.nrows));
  MultiGpuOptions opt;
  opt.num_gpus = 1;
  const auto report =
      simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a, x, out, opt);
  EXPECT_DOUBLE_EQ(report.comm_seconds, 0.0);
}

TEST(MultiGpu, RejectsNonPositiveDeviceCount) {
  const auto a = toggle_matrix(10);
  const auto x = probe(a.nrows);
  std::vector<real_t> out(static_cast<std::size_t>(a.nrows));
  MultiGpuOptions opt;
  opt.num_gpus = 0;
  EXPECT_THROW((void)simulate_multi_gpu_jacobi_sweep(DeviceSpec::gtx580(), a,
                                                     x, out, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmesolve::gpusim
