// End-to-end integration tests: network -> DFS enumeration -> rate matrix
// -> steady-state solve -> landscape, across all four biological models and
// through the Matrix Market round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "core/landscape.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "gpusim/kernels.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/power_iteration.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/matrix_market.hpp"

namespace cmesolve {
namespace {

using core::StateSpace;

TEST(Integration, EveryTinySuiteModelSolvesEndToEnd) {
  for (auto& model : core::models::paper_suite(core::models::SuiteScale::kTiny)) {
    const StateSpace space(model.network, model.initial, 1'000'000);
    const auto a = core::rate_matrix(space);

    solver::WarpedEllDiaOperator op(a);
    std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
    solver::fill_uniform(p);
    solver::JacobiOptions opt;
    opt.eps = 1e-8;
    opt.max_iterations = 200'000;
    const auto r = solver::jacobi_solve(op, a.inf_norm(), p, opt);

    SCOPED_TRACE(model.name);
    // Either the eps criterion or (for the slow-mixing oscillators) the
    // stagnation criterion — exactly the paper's Table IV behaviour.
    EXPECT_NE(r.reason, solver::StopReason::kMaxIterations);

    // The iterate must be a probability vector...
    real_t sum = 0;
    real_t min_v = 1;
    for (real_t v : p) {
      sum += v;
      min_v = std::min(min_v, v);
    }
    EXPECT_NEAR(sum, 1.0, 1e-10);
    EXPECT_GE(min_v, 0.0);

    // ...and approximately stationary.
    std::vector<real_t> ap(static_cast<std::size_t>(a.nrows));
    sparse::spmv(a, p, ap);
    EXPECT_LT(solver::norm_inf(ap) / a.inf_norm(), 1e-3);
  }
}

TEST(Integration, JacobiAndPowerIterationAgreeOnPhageLambda) {
  core::models::PhageLambdaParams pp;
  pp.cap_ci = pp.cap_cro = 4;
  pp.cap_ci2 = pp.cap_cro2 = 2;
  const auto net = core::models::phage_lambda(pp);
  const StateSpace space(net, core::models::phage_lambda_initial(pp),
                         1'000'000);
  const auto a = core::rate_matrix(space);
  solver::CsrDiaOperator op(a);

  std::vector<real_t> pj(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(pj);
  solver::JacobiOptions jopt;
  jopt.eps = 1e-10;
  jopt.damping = 0.9;  // damp the near-oscillatory dimerization modes
  (void)solver::jacobi_solve(op, a.inf_norm(), pj, jopt);

  std::vector<real_t> ppow(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(ppow);
  solver::PowerIterationOptions popt;
  popt.eps = 1e-10;
  (void)solver::power_iteration_solve(op, a.inf_norm(), ppow, popt);

  for (std::size_t i = 0; i < pj.size(); ++i) {
    EXPECT_NEAR(pj[i], ppow[i], 1e-6);
  }
}

TEST(Integration, MatrixMarketRoundTripPreservesTheSolution) {
  // Export a CME matrix, re-import it (the "generalizes to any Markov
  // model" path) and verify the steady state is unchanged.
  core::models::BrusselatorParams bp;
  bp.cap_x = 30;
  bp.cap_y = 15;
  const auto net = core::models::brusselator(bp);
  const StateSpace space(net, core::models::brusselator_initial(bp), 100000);
  const auto a = core::rate_matrix(space);

  std::stringstream io;
  sparse::write_matrix_market(io, a);
  const auto a2 = sparse::read_matrix_market(io);

  solver::JacobiOptions opt;
  opt.eps = 1e-9;
  opt.max_iterations = 500'000;
  std::vector<real_t> p1(static_cast<std::size_t>(a.nrows));
  std::vector<real_t> p2(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(p1);
  solver::fill_uniform(p2);
  solver::CsrDiaOperator op1(a);
  solver::CsrDiaOperator op2(a2);
  (void)solver::jacobi_solve(op1, a.inf_norm(), p1, opt);
  (void)solver::jacobi_solve(op2, a2.inf_norm(), p2, opt);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p1[i], p2[i], 1e-7);
  }
}

TEST(Integration, SimulatedGpuSpmvAgreesWithSolverOperator) {
  // The kernel the GPU simulator executes and the operator the host solver
  // uses must be the same linear map.
  core::models::SchnakenbergParams sp;
  sp.cap_x = 40;
  sp.cap_y = 20;
  const auto net = core::models::schnakenberg(sp);
  const StateSpace space(net, core::models::schnakenberg_initial(sp), 100000);
  const auto a = core::rate_matrix(space);

  std::vector<real_t> x(static_cast<std::size_t>(a.nrows));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 / static_cast<real_t>(i + 1);
  }
  std::vector<real_t> y_ref(static_cast<std::size_t>(a.nrows));
  sparse::spmv(a, x, y_ref);

  const auto hybrid = sparse::sliced_ell_dia_from_csr(a, {-1, 0, 1});
  std::vector<real_t> y_sim(static_cast<std::size_t>(a.nrows));
  (void)gpusim::simulate_spmv(gpusim::DeviceSpec::gtx580(), hybrid, x, y_sim);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    EXPECT_NEAR(y_sim[i], y_ref[i], 1e-11);
  }
}

TEST(Integration, ParameterSweepShiftsTheLandscape) {
  // The system-biology workflow the paper motivates: solve the same network
  // under different rate conditions. Raising A's synthesis rate must move
  // probability mass toward high-A states.
  const auto mean_a = [](real_t synth) {
    core::models::ToggleSwitchParams tp;
    tp.cap_a = tp.cap_b = 20;
    tp.synth = synth;
    const auto net = core::models::toggle_switch(tp);
    const StateSpace space(net, core::models::toggle_switch_initial(tp),
                           1'000'000);
    const auto a = core::rate_matrix(space);
    solver::CsrDiaOperator op(a);
    std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
    solver::fill_uniform(p);
    solver::JacobiOptions opt;
    opt.eps = 1e-9;
    (void)solver::jacobi_solve(op, a.inf_norm(), p, opt);

    const int sa = net.find_species("A");
    real_t mean = 0;
    for (index_t i = 0; i < space.size(); ++i) {
      mean += p[i] * space.count(i, sa);
    }
    return mean;
  };
  EXPECT_LT(mean_a(5.0), mean_a(15.0));
}

}  // namespace
}  // namespace cmesolve
