// Contract tests for the observability layer (src/obs/):
//   * disabled mode records nothing,
//   * trace JSON is well-formed and span-balanced,
//   * the metric registry produced by the reference pipeline is bit-identical
//     across thread budgets 1/2/8 (the PR-1 determinism contract extended to
//     telemetry),
//   * the run report carries the required schema keys,
//   * the JsonWriter emits strict RFC 8259 output on every edge case,
//   * the flight recorder's ring, post-mortem and Chrome-trace export obey
//     the same 1/2/8-thread bit-identity contract as the registry.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "gpusim/device.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "util/parallel.hpp"

namespace cmesolve {
namespace {

/// RAII thread-budget override; restores auto-detection on scope exit.
class ThreadBudget {
 public:
  explicit ThreadBudget(int n) { util::set_max_threads(n); }
  ~ThreadBudget() { util::set_max_threads(0); }
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;
};

/// Reset every telemetry sink to the disabled, empty state.
void reset_telemetry() {
  obs::Tracer::instance().disable();
  obs::Tracer::instance().clear();
  obs::set_metrics_enabled(false);
  obs::MetricRegistry::instance().clear();
  obs::FlightRecorder::instance().disable();
  obs::FlightRecorder::instance().clear();
}

/// The determinism reference pipeline: enumerate a small toggle switch,
/// assemble its rate matrix and solve on the simulated GPU — touching every
/// instrumented layer (core, solver, gpusim).
void reference_solve() {
  core::models::ToggleSwitchParams params;
  params.cap_a = params.cap_b = 12;
  const auto network = core::models::toggle_switch(params);
  const core::StateSpace space(
      network, core::models::toggle_switch_initial(params), 100'000);
  const auto a = core::rate_matrix(space);

  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(p);
  solver::JacobiOptions opt;
  opt.eps = 1e-8;
  opt.max_iterations = 2'000;
  (void)solver::gpu_jacobi_solve(gpusim::DeviceSpec::gtx580(), a, p, opt);
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (no dependency allowed in-tree;
// accepting exactly the grammar of RFC 8259 is enough to catch unbalanced
// braces, stray commas and non-finite number leaks).
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool parse_value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool parse_string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool parse_literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_telemetry(); }
  void TearDown() override { reset_telemetry(); }
};

// ---------------------------------------------------------------------------
// Disabled mode
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledModeEmitsNothing) {
  EXPECT_FALSE(obs::trace_enabled());
  EXPECT_FALSE(obs::metrics_enabled());

  reference_solve();

  EXPECT_EQ(obs::Tracer::instance().size(), 0u);
  EXPECT_TRUE(obs::MetricRegistry::instance().empty());
  EXPECT_EQ(obs::MetricRegistry::instance().deterministic_fingerprint(), "");
}

TEST_F(ObsTest, SpanGuardCapturesDisabledStateAtConstruction) {
  obs::Tracer::instance().enable();
  {
    CMESOLVE_TRACE_SPAN("balanced.even.if.disabled.midway");
    obs::Tracer::instance().disable();
  }  // the span was active at construction, so its E event still lands
  EXPECT_EQ(obs::Tracer::instance().open_spans(), 0);
}

// ---------------------------------------------------------------------------
// Trace well-formedness
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TraceJsonWellFormedAndSpanBalanced) {
  obs::Tracer::instance().enable();
  reference_solve();
  obs::Tracer::instance().disable();

  ASSERT_GT(obs::Tracer::instance().size(), 0u);
  EXPECT_EQ(obs::Tracer::instance().open_spans(), 0);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);

  std::ostringstream os;
  obs::Tracer::instance().write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).valid()) << json.substr(0, 400);

  // The reference pipeline must cover every instrumented layer.
  for (const char* name :
       {"core.enumerate", "core.rate_matrix", "jacobi.solve", "jacobi.sweep",
        "gpu_jacobi.solve", "sim.jacobi_sweep", "sim.vector_op"}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing span " << name;
  }
}

TEST_F(ObsTest, TraceEventsCarryMatchedBeginEndPairs) {
  obs::Tracer::instance().enable();
  {
    CMESOLVE_TRACE_SPAN("outer");
    CMESOLVE_TRACE_SPAN("inner");
    CMESOLVE_TRACE_INSTANT("tick");
    CMESOLVE_TRACE_COUNTER("gauge", 42.0);
  }
  obs::Tracer::instance().disable();

  const auto events = obs::Tracer::instance().events();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_EQ(events[2].phase, 'i');
  EXPECT_EQ(events[3].phase, 'C');
  EXPECT_EQ(events[3].value, 42.0);
  // RAII order: inner closes before outer.
  EXPECT_EQ(events[4].name, "inner");
  EXPECT_EQ(events[4].phase, 'E');
  EXPECT_EQ(events[5].name, "outer");
  EXPECT_EQ(events[5].phase, 'E');
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RegistryCountersGaugesHistograms) {
  obs::set_metrics_enabled(true);
  obs::count("c");
  obs::count("c", 4);
  obs::gauge("g", 2.5);
  obs::gauge("g", 3.5);
  obs::observe("h", 1.0);
  obs::observe("h", 3.0);

  const auto snap = obs::MetricRegistry::instance().snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.at("c").count, 5u);
  EXPECT_EQ(snap.at("g").gauge, 3.5);
  EXPECT_EQ(snap.at("h").stats.count(), 2u);
  EXPECT_EQ(snap.at("h").stats.mean(), 2.0);
}

TEST_F(ObsTest, VolatileMetricsExcludedFromFingerprint) {
  obs::set_metrics_enabled(true);
  obs::gauge("det", 1.0);
  obs::gauge("wallclock", 0.123, /*is_volatile=*/true);

  const auto fp = obs::MetricRegistry::instance().deterministic_fingerprint();
  EXPECT_NE(fp.find("det"), std::string::npos);
  EXPECT_EQ(fp.find("wallclock"), std::string::npos);
}

TEST_F(ObsTest, SuppressMetricsBlocksPublication) {
  obs::set_metrics_enabled(true);
  {
    obs::SuppressMetrics guard;
    EXPECT_FALSE(obs::metrics_enabled());
    obs::count("suppressed");
  }
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_TRUE(obs::MetricRegistry::instance().empty());
}

// ---------------------------------------------------------------------------
// Determinism across thread budgets (the headline contract)
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RegistryBitIdenticalAcrossThreadCounts) {
  // Reference at 1 thread (the serial engines).
  std::string ref_fingerprint;
  std::uint64_t ref_trace_signature = 0;
  {
    ThreadBudget budget(1);
    obs::set_metrics_enabled(true);
    obs::Tracer::instance().enable();
    reference_solve();
    obs::Tracer::instance().disable();
    obs::set_metrics_enabled(false);
    ref_fingerprint =
        obs::MetricRegistry::instance().deterministic_fingerprint();
    ref_trace_signature = obs::Tracer::instance().content_signature();
  }
  ASSERT_FALSE(ref_fingerprint.empty());

  for (int threads : {2, 8}) {
    reset_telemetry();
    ThreadBudget budget(threads);
    obs::set_metrics_enabled(true);
    obs::Tracer::instance().enable();
    reference_solve();
    obs::Tracer::instance().disable();
    obs::set_metrics_enabled(false);

    EXPECT_EQ(obs::MetricRegistry::instance().deterministic_fingerprint(),
              ref_fingerprint)
        << "metric registry diverged at " << threads << " threads";
    EXPECT_EQ(obs::Tracer::instance().content_signature(), ref_trace_signature)
        << "trace content diverged at " << threads << " threads";
    EXPECT_EQ(obs::Tracer::instance().open_spans(), 0);
  }
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ReportCarriesSchemaProvenanceAndMetrics) {
  obs::set_metrics_enabled(true);
  obs::set_context("program", "test_obs");
  reference_solve();

  std::ostringstream os;
  obs::write_report(os);
  const std::string json = os.str();

  EXPECT_TRUE(JsonParser(json).valid()) << json.substr(0, 400);
  for (const char* key :
       {"cmesolve.run_report/2", "provenance", "version", "git", "threads",
        "perf_available", "metrics", "counters", "gauges", "histograms",
        "volatile", "jacobi.iterations", "jacobi.residual.final",
        "sim.jacobi_sweep", "test_obs"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing key " << key;
  }
}

TEST_F(ObsTest, ReportSerializesNonFiniteAsNull) {
  obs::set_metrics_enabled(true);
  obs::gauge("bad", std::numeric_limits<double>::quiet_NaN());

  std::ostringstream os;
  obs::write_report(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).valid());
  EXPECT_NE(json.find("\"bad\": null"), std::string::npos);
  // Bare non-finite tokens would break strict JSON parsers. (Note: a plain
  // find("nan") would false-positive on the word "provenance".)
  EXPECT_EQ(json.find(": nan"), std::string::npos);
  EXPECT_EQ(json.find(": inf"), std::string::npos);
  EXPECT_EQ(json.find(": -inf"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JsonWriter edge cases (the writer backs the trace exporter, the run
// report, the flight export and the bench ledger — one bug corrupts all).
// ---------------------------------------------------------------------------

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object()
      .kv("nan", std::numeric_limits<double>::quiet_NaN())
      .kv("inf", std::numeric_limits<double>::infinity())
      .kv("ninf", -std::numeric_limits<double>::infinity())
      .kv("fine", 1.5)
      .end_object();
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).valid()) << json;
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"ninf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"fine\": 1.5"), std::string::npos);
}

TEST(JsonWriterTest, ControlCharactersAndQuotesAreEscaped) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object()
      .kv(std::string_view("q\"b\\s\nn\tt\rr\x01u", 12), "v")
      .end_object();
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).valid()) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  // No raw control byte may survive into the output.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonWriterTest, DeepNestingStaysBalanced) {
  constexpr int kDepth = 64;
  std::ostringstream os;
  obs::JsonWriter w(os);
  for (int i = 0; i < kDepth; ++i) {
    w.begin_object().key("a");
  }
  w.begin_array().value(std::int64_t{1}).value(std::int64_t{2}).end_array();
  for (int i = 0; i < kDepth; ++i) {
    w.end_object();
  }
  EXPECT_TRUE(JsonParser(os.str()).valid()) << os.str().substr(0, 200);
}

TEST(JsonWriterTest, ZeroIndentPacksOneLine) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object()
      .key("arr")
      .begin_array()
      .value(std::int64_t{1})
      .value(true)
      .null()
      .end_array()
      .kv("s", "x")
      .end_object();
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).valid()) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST_F(ObsTest, FlightDisabledRecordsNothing) {
  EXPECT_FALSE(obs::flight_enabled());
  obs::flight("t", obs::FlightKind::kResidual, 1, 0.5);
  reference_solve();  // instrumented solver paths, recorder off
  EXPECT_EQ(obs::FlightRecorder::instance().size(), 0u);
  EXPECT_FALSE(obs::FlightRecorder::instance().post_mortem());
}

TEST_F(ObsTest, FlightRingOverwritesOldestKeepsTail) {
  auto& rec = obs::FlightRecorder::instance();
  rec.enable(/*capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::flight("tail", obs::FlightKind::kResidual, i,
                static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.overwritten(), 12u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first unroll of the ring: the post mortem keeps the tail of the
  // flight (iterations 12..19), not the takeoff.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].iteration, 12 + i);
  }
}

TEST_F(ObsTest, FlightSuppressedInsidePoolTasks) {
  obs::FlightRecorder::instance().enable(16);
  {
    obs::SuppressMetrics guard;
    EXPECT_FALSE(obs::flight_enabled());
    obs::flight("suppressed", obs::FlightKind::kResidual, 0, 0.0);
  }
  EXPECT_TRUE(obs::flight_enabled());
  EXPECT_EQ(obs::FlightRecorder::instance().size(), 0u);
}

TEST_F(ObsTest, FlightChromeTraceExportIsValidJson) {
  auto& rec = obs::FlightRecorder::instance();
  rec.enable(16);
  obs::flight("jacobi.residual", obs::FlightKind::kResidual, 100, 1e-7);
  obs::flight("batch.residual", obs::FlightKind::kResidual, 100, 2e-7,
              /*lane=*/3);
  obs::flight("bad", obs::FlightKind::kResidual, 101,
              std::numeric_limits<double>::quiet_NaN());
  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("batch.residual[3]"), std::string::npos);
  EXPECT_EQ(json.find(": nan"), std::string::npos);
}

/// The acceptance scenario: a solve forced to stagnate (iteration cap far
/// below convergence) must leave a post-mortem flight section that is
/// bit-identical across thread budgets 1/2/8 — recorded from the calling
/// thread in program order, indexed by iteration, no timestamps.
TEST_F(ObsTest, ForcedStagnationPostMortemBitIdenticalAcrossThreads) {
  const auto solve_capped = [] {
    core::models::ToggleSwitchParams params;
    params.cap_a = params.cap_b = 12;
    const auto network = core::models::toggle_switch(params);
    const core::StateSpace space(
        network, core::models::toggle_switch_initial(params), 100'000);
    const auto a = core::rate_matrix(space);
    std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
    solver::fill_uniform(p);
    solver::JacobiOptions opt;
    opt.eps = 1e-14;          // unreachable
    opt.max_iterations = 40;  // forced stop short of convergence
    opt.check_every = 10;
    const solver::CsrDiaOperator op(a);
    return solver::jacobi_solve(op, a.inf_norm(), p, opt);
  };

  std::uint64_t ref_signature = 0;
  std::string ref_trace;
  std::string ref_reason;
  std::size_t ref_events = 0;
  bool first = true;
  for (int threads : {1, 2, 8}) {
    reset_telemetry();
    ThreadBudget budget(threads);
    obs::FlightRecorder::instance().enable();
    const auto res = solve_capped();
    ASSERT_NE(res.reason, solver::StopReason::kConverged);
    auto& rec = obs::FlightRecorder::instance();
    EXPECT_TRUE(rec.post_mortem())
        << "unconverged solve must mark a post mortem";
    EXPECT_GT(rec.size(), 0u);
    std::ostringstream os;
    rec.write_chrome_trace(os);
    if (first) {
      ref_signature = rec.content_signature();
      ref_trace = os.str();
      ref_reason = rec.post_mortem_reason();
      ref_events = rec.size();
      first = false;
      continue;
    }
    EXPECT_EQ(rec.content_signature(), ref_signature)
        << "flight stream diverged at " << threads << " threads";
    EXPECT_EQ(os.str(), ref_trace)
        << "flight export diverged at " << threads << " threads";
    EXPECT_EQ(rec.post_mortem_reason(), ref_reason);
    EXPECT_EQ(rec.size(), ref_events);
  }
}

/// The /2 run report embeds the flight section when the recorder holds a
/// buffer, and the whole document stays strict JSON.
TEST_F(ObsTest, ReportEmbedsFlightSection) {
  obs::set_metrics_enabled(true);
  obs::FlightRecorder::instance().enable(32);
  obs::flight("jacobi.residual", obs::FlightKind::kResidual, 10, 1e-3);
  obs::FlightRecorder::instance().mark_post_mortem("test: forced");

  std::ostringstream os;
  obs::write_report(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonParser(json).valid()) << json.substr(0, 400);
  for (const char* key : {"\"flight\"", "\"post_mortem\": \"test: forced\"",
                          "\"signature\"", "\"events\"", "\"capacity\": 32",
                          "\"kind\": \"residual\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

}  // namespace
}  // namespace cmesolve
