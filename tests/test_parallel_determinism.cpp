// Bit-identity contract of the parallel execution engines.
//
// Every parallel path in the library — the sharded GPU simulation behind
// for_each_warp, the fixed-chunk solver reductions, the parallel rate-matrix
// assembly and the partition-parallel multi-GPU sweep — promises the SAME
// NUMBERS as the serial engine, for any host thread count. This suite pins
// that promise: each scenario runs at 1 thread (the original serial engine),
// then at 2 and 8 threads (the pool engines, oversubscribed on small hosts),
// and every counter, modeled time and solution entry must compare EXACTLY
// (EXPECT_EQ, no tolerances).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "gpusim/kernels.hpp"
#include "gpusim/multi_gpu.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cmesolve {
namespace {

using gpusim::DeviceSpec;
using gpusim::KernelStats;
using gpusim::SimOptions;
using sparse::Coo;
using sparse::Csr;
using sparse::csr_from_coo;

/// RAII thread-budget override; restores auto-detection on scope exit.
class ThreadBudget {
 public:
  explicit ThreadBudget(int n) { util::set_max_threads(n); }
  ~ThreadBudget() { util::set_max_threads(0); }
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;
};

/// The thread counts every scenario is pinned at. 1 selects the original
/// serial engine; 2 and 8 exercise the pool (8 oversubscribes a small host,
/// which must not change any number either).
const int kThreadCounts[] = {1, 2, 8};

Csr cme_like_matrix(index_t n, index_t extra, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo c;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    c.add(r, r, rng.uniform(-6, -3));
    if (r > 0) c.add(r, r - 1, rng.uniform(0.5, 1.5));
    if (r < n - 1) c.add(r, r + 1, rng.uniform(0.5, 1.5));
    const auto len = rng.bounded(static_cast<std::uint64_t>(extra) + 1);
    for (std::uint64_t j = 0; j < len; ++j) {
      c.add(r, static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n))),
            rng.uniform(0.1, 0.9));
    }
  }
  return csr_from_coo(std::move(c));
}

std::vector<real_t> probe_vector(index_t n) {
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[i] = 1.0 + 0.001 * static_cast<real_t>(i % 997);
  }
  return x;
}

/// Everything one simulated kernel produces.
struct KernelRun {
  KernelStats stats;
  std::vector<real_t> y;
};

void expect_identical(const KernelRun& base, const KernelRun& run,
                      const std::string& label) {
  const auto& a = base.stats.traffic;
  const auto& b = run.stats.traffic;
  EXPECT_EQ(a.dram_bytes, b.dram_bytes) << label;
  EXPECT_EQ(a.l2_bytes, b.l2_bytes) << label;
  EXPECT_EQ(a.l1_bytes, b.l1_bytes) << label;
  EXPECT_EQ(a.transactions, b.transactions) << label;
  EXPECT_EQ(a.l1_hits, b.l1_hits) << label;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << label;
  EXPECT_EQ(a.l2_hits, b.l2_hits) << label;
  EXPECT_EQ(a.l2_misses, b.l2_misses) << label;
  EXPECT_EQ(a.flops, b.flops) << label;
  // Modeled time derives from the counters, so it must match bitwise too.
  EXPECT_EQ(base.stats.seconds, run.stats.seconds) << label;
  EXPECT_EQ(base.stats.gflops, run.stats.gflops) << label;
  EXPECT_EQ(base.stats.occupancy, run.stats.occupancy) << label;
  ASSERT_EQ(base.y.size(), run.y.size()) << label;
  for (std::size_t i = 0; i < base.y.size(); ++i) {
    ASSERT_EQ(base.y[i], run.y[i]) << label << " y[" << i << "]";
  }
}

/// Run `kernel` at every pinned thread count and require bit-identity with
/// the 1-thread (serial-engine) run.
void check_kernel(const std::function<KernelRun()>& kernel,
                  const std::string& label) {
  KernelRun base;
  {
    ThreadBudget serial(1);
    base = kernel();
  }
  for (int t : kThreadCounts) {
    if (t == 1) continue;
    ThreadBudget threads(t);
    expect_identical(base, kernel(), label + " @" + std::to_string(t));
  }
}

// n large enough for several scheduling waves (a GTX 580 wave at block 256
// covers ~100 blocks), so the wave-major L2 replay is genuinely exercised.
constexpr index_t kRows = 30'000;

TEST(ParallelDeterminism, EllKernel) {
  const Csr m = cme_like_matrix(kRows, 4, 11);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  const auto ell = sparse::ell_from_csr(m);
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv(dev, ell, x, r.y);
        return r;
      },
      "ell");
}

TEST(ParallelDeterminism, SlicedEllKernel) {
  const Csr m = cme_like_matrix(kRows, 4, 12);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  const auto se = sparse::warped_ell_from_csr(m);
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv(dev, se, x, r.y);
        return r;
      },
      "sliced-ell");
}

TEST(ParallelDeterminism, EllDiaKernel) {
  const Csr m = cme_like_matrix(kRows, 4, 13);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  const auto hy = sparse::ell_dia_from_csr(m, {-1, 0, 1});
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv(dev, hy, x, r.y);
        return r;
      },
      "ell+dia");
}

TEST(ParallelDeterminism, SlicedEllDiaKernel) {
  const Csr m = cme_like_matrix(kRows, 4, 14);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  const auto hy = sparse::sliced_ell_dia_from_csr(m, {-1, 0, 1});
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv(dev, hy, x, r.y);
        return r;
      },
      "sliced-ell+dia");
}

TEST(ParallelDeterminism, CsrScalarAndVectorKernels) {
  const Csr m = cme_like_matrix(kRows, 4, 15);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv(dev, m, x, r.y);
        return r;
      },
      "csr-scalar");
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv_csr_vector(dev, m, x, r.y);
        return r;
      },
      "csr-vector");
}

TEST(ParallelDeterminism, BcsrKernel) {
  const Csr m = cme_like_matrix(kRows, 4, 16);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  const auto b = sparse::bcsr_from_csr(m, 2, 2);
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv(dev, b, x, r.y);
        return r;
      },
      "bcsr");
}

TEST(ParallelDeterminism, DiaKernel) {
  // Tridiagonal (extra = 0) so {-1, 0, +1} covers the matrix exactly.
  const Csr m = cme_like_matrix(kRows, 0, 17);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  const auto d = sparse::dia_from_csr(m, {-1, 0, 1});
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_spmv(dev, d, x, r.y);
        return r;
      },
      "dia");
}

TEST(ParallelDeterminism, JacobiSweepKernel) {
  const Csr m = cme_like_matrix(kRows, 4, 18);
  const auto x = probe_vector(kRows);
  const auto dev = DeviceSpec::gtx580();
  const auto hy = sparse::sliced_ell_dia_from_csr(m, {-1, 0, 1});
  check_kernel(
      [&] {
        KernelRun r;
        r.y.assign(static_cast<std::size_t>(kRows), 0.0);
        r.stats = gpusim::simulate_jacobi_sweep(dev, hy, x, r.y);
        return r;
      },
      "jacobi-sweep");
}

TEST(ParallelDeterminism, MultiGpuSweep) {
  const Csr m = cme_like_matrix(8192, 4, 19);
  const auto x = probe_vector(8192);
  const auto dev = DeviceSpec::gtx580();
  gpusim::MultiGpuOptions opt;
  opt.num_gpus = 4;

  gpusim::MultiGpuReport base;
  std::vector<real_t> base_out(8192, 0.0);
  {
    ThreadBudget serial(1);
    base = gpusim::simulate_multi_gpu_jacobi_sweep(dev, m, x, base_out, opt);
  }
  for (int t : kThreadCounts) {
    if (t == 1) continue;
    ThreadBudget threads(t);
    std::vector<real_t> out(8192, 0.0);
    const auto rep = gpusim::simulate_multi_gpu_jacobi_sweep(dev, m, x, out, opt);
    const std::string label = "multi-gpu @" + std::to_string(t);
    EXPECT_EQ(base.compute_seconds, rep.compute_seconds) << label;
    EXPECT_EQ(base.comm_seconds, rep.comm_seconds) << label;
    EXPECT_EQ(base.seconds_per_iteration, rep.seconds_per_iteration) << label;
    EXPECT_EQ(base.single_gpu_seconds, rep.single_gpu_seconds) << label;
    ASSERT_EQ(base.partitions.size(), rep.partitions.size()) << label;
    for (std::size_t p = 0; p < base.partitions.size(); ++p) {
      EXPECT_EQ(base.partitions[p].halo_in, rep.partitions[p].halo_in) << label;
      EXPECT_EQ(base.partitions[p].sweep.seconds, rep.partitions[p].sweep.seconds)
          << label;
      EXPECT_EQ(base.partitions[p].sweep.traffic.dram_bytes,
                rep.partitions[p].sweep.traffic.dram_bytes)
          << label;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(base_out[i], out[i]) << label << " x_out[" << i << "]";
    }
  }
}

TEST(ParallelDeterminism, VectorReductions) {
  // Vector long enough for many reduction chunks, with values whose sum
  // genuinely depends on the association order in the last bits.
  Xoshiro256 rng(99);
  std::vector<real_t> v(100'003);
  std::vector<real_t> w(100'003);
  for (auto& e : v) e = rng.uniform(-1.0, 1.0);
  for (auto& e : w) e = rng.uniform(-1.0, 1.0);

  real_t l1 = 0.0, li = 0.0, l2 = 0.0, dp = 0.0;
  {
    ThreadBudget serial(1);
    l1 = solver::norm_l1(v);
    li = solver::norm_inf(v);
    l2 = solver::norm_l2(v);
    dp = solver::dot(v, w);
  }
  for (int t : kThreadCounts) {
    if (t == 1) continue;
    ThreadBudget threads(t);
    EXPECT_EQ(l1, solver::norm_l1(v)) << t;
    EXPECT_EQ(li, solver::norm_inf(v)) << t;
    EXPECT_EQ(l2, solver::norm_l2(v)) << t;
    EXPECT_EQ(dp, solver::dot(v, w)) << t;
  }
}

TEST(ParallelDeterminism, RateMatrixAssembly) {
  core::models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = 40;
  const auto net = core::models::toggle_switch(p);
  const core::StateSpace space(net, core::models::toggle_switch_initial(p),
                               1'000'000);

  Csr base;
  {
    ThreadBudget serial(1);
    base = core::rate_matrix(space);
  }
  for (int t : kThreadCounts) {
    if (t == 1) continue;
    ThreadBudget threads(t);
    const Csr m = core::rate_matrix(space);
    const std::string label = "rate-matrix @" + std::to_string(t);
    ASSERT_EQ(base.row_ptr, m.row_ptr) << label;
    ASSERT_EQ(base.col_idx, m.col_idx) << label;
    ASSERT_EQ(base.val, m.val) << label;
  }
}

/// Jacobi convergence histories must be reproducible run-to-run at any
/// thread count: iterations, every residual sample, flops and stop reason.
template <class Op>
void check_jacobi(const Csr& a, const std::string& label) {
  const Op op(a);
  const real_t an = a.inf_norm();
  solver::JacobiOptions opt;
  opt.max_iterations = 400;
  opt.check_every = 50;

  struct Run {
    solver::JacobiResult res;
    std::vector<real_t> history;
    std::vector<real_t> x;
  };
  const auto solve = [&] {
    Run r;
    opt.on_residual = [&r](std::uint64_t, real_t resid) {
      r.history.push_back(resid);
    };
    r.x.assign(static_cast<std::size_t>(a.nrows), 0.0);
    solver::fill_uniform(r.x);
    r.res = solver::jacobi_solve(op, an, std::span<real_t>(r.x), opt);
    return r;
  };

  Run base;
  {
    ThreadBudget serial(1);
    base = solve();
  }
  for (int t : kThreadCounts) {
    if (t == 1) continue;
    ThreadBudget threads(t);
    const Run run = solve();
    const std::string at = label + " @" + std::to_string(t);
    EXPECT_EQ(base.res.iterations, run.res.iterations) << at;
    EXPECT_EQ(base.res.residual, run.res.residual) << at;
    EXPECT_EQ(base.res.flops, run.res.flops) << at;
    EXPECT_EQ(static_cast<int>(base.res.reason), static_cast<int>(run.res.reason))
        << at;
    ASSERT_EQ(base.history.size(), run.history.size()) << at;
    for (std::size_t i = 0; i < base.history.size(); ++i) {
      EXPECT_EQ(base.history[i], run.history[i]) << at << " check " << i;
    }
    ASSERT_EQ(base.x.size(), run.x.size()) << at;
    for (std::size_t i = 0; i < base.x.size(); ++i) {
      ASSERT_EQ(base.x[i], run.x[i]) << at << " x[" << i << "]";
    }
  }
}

TEST(ParallelDeterminism, JacobiCsrOperator) {
  check_jacobi<solver::CsrOperator>(cme_like_matrix(20'000, 3, 21), "csr");
}

TEST(ParallelDeterminism, JacobiCsrDiaOperator) {
  check_jacobi<solver::CsrDiaOperator>(cme_like_matrix(20'000, 3, 22),
                                       "csr+dia");
}

TEST(ParallelDeterminism, JacobiEllDiaOperator) {
  check_jacobi<solver::EllDiaOperator>(cme_like_matrix(20'000, 3, 23),
                                       "ell+dia");
}

TEST(ParallelDeterminism, JacobiWarpedEllDiaOperator) {
  check_jacobi<solver::WarpedEllDiaOperator>(cme_like_matrix(20'000, 3, 24),
                                             "warped-ell+dia");
}

}  // namespace
}  // namespace cmesolve
