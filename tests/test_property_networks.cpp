// Property tests over randomized reaction networks: whatever the network,
// the enumeration must be closed, the rate matrix a proper generator, and
// the solver output a probability vector.
#include <gtest/gtest.h>

#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "util/rng.hpp"

namespace cmesolve::core {
namespace {

/// Build a random mass-action network. Every consuming reaction gets a
/// reverse partner so no state is absorbing and the chain stays irreducible
/// on its reachable component.
ReactionNetwork random_network(Xoshiro256& rng, int num_species,
                               std::int32_t cap, int num_pairs) {
  ReactionNetwork net;
  for (int s = 0; s < num_species; ++s) {
    net.add_species("S" + std::to_string(s), cap);
  }
  for (int k = 0; k < num_pairs; ++k) {
    const int src = static_cast<int>(rng.bounded(num_species));
    int dst = static_cast<int>(rng.bounded(num_species));
    if (dst == src) dst = (dst + 1) % num_species;
    const auto copies = static_cast<std::int32_t>(1 + rng.bounded(2));

    // forward: copies of src convert into one dst
    net.add_reaction("fwd" + std::to_string(k), rng.uniform(0.5, 3.0),
                     {{src, copies}}, {{src, -copies}, {dst, +1}});
    // reverse
    net.add_reaction("rev" + std::to_string(k), rng.uniform(0.5, 3.0),
                     {{dst, 1}}, {{dst, -1}, {src, +copies}});
  }
  // One birth/death pair keeps the origin connected.
  net.add_reaction("feed", rng.uniform(0.5, 4.0), {}, {{0, +1}});
  net.add_reaction("decay", rng.uniform(0.5, 2.0), {{0, 1}}, {{0, -1}});
  return net;
}

class RandomNetwork : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomNetwork, EnumerationIsClosedAndConsistent) {
  Xoshiro256 rng(GetParam());
  const int ns = 2 + static_cast<int>(rng.bounded(3));
  const auto cap = static_cast<std::int32_t>(3 + rng.bounded(6));
  const auto net = random_network(rng, ns, cap, 2 + static_cast<int>(rng.bounded(4)));

  const StateSpace space(net, State(static_cast<std::size_t>(ns), 0), 200000);
  ASSERT_FALSE(space.truncated());
  ASSERT_GT(space.size(), 1);

  for (index_t i = 0; i < space.size(); ++i) {
    const State x = space.state(i);
    EXPECT_EQ(space.find(x), i);
    for (int k = 0; k < net.num_reactions(); ++k) {
      if (net.applicable(k, x)) {
        EXPECT_GE(space.find(net.apply(k, x)), 0)
            << "reachable successor missing from the enumeration";
      }
    }
  }
}

TEST_P(RandomNetwork, RateMatrixIsAGenerator) {
  Xoshiro256 rng(GetParam() ^ 0xBEEF);
  const int ns = 2 + static_cast<int>(rng.bounded(3));
  const auto cap = static_cast<std::int32_t>(3 + rng.bounded(5));
  const auto net = random_network(rng, ns, cap, 2 + static_cast<int>(rng.bounded(4)));
  const StateSpace space(net, State(static_cast<std::size_t>(ns), 0), 200000);
  const auto a = rate_matrix(space);

  EXPECT_LT(max_column_sum(a), 1e-9 * a.inf_norm());
  for (index_t r = 0; r < a.nrows; ++r) {
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      if (a.col_idx[p] == r) {
        EXPECT_LE(a.val[p], 0.0);
      } else {
        EXPECT_GT(a.val[p], 0.0);
      }
    }
  }
}

TEST_P(RandomNetwork, SolverReturnsAProbabilityVector) {
  Xoshiro256 rng(GetParam() ^ 0xF00D);
  const int ns = 2 + static_cast<int>(rng.bounded(2));
  const auto cap = static_cast<std::int32_t>(3 + rng.bounded(4));
  const auto net = random_network(rng, ns, cap, 2 + static_cast<int>(rng.bounded(3)));
  const StateSpace space(net, State(static_cast<std::size_t>(ns), 0), 200000);
  const auto a = rate_matrix(space);

  solver::WarpedEllDiaOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(p);
  solver::JacobiOptions opt;
  opt.eps = 1e-9;
  opt.max_iterations = 100000;
  opt.damping = 0.8;  // random nets can be bipartite-ish
  (void)solver::jacobi_solve(op, a.inf_norm(), p, opt);

  real_t sum = 0.0;
  for (real_t v : p) {
    EXPECT_GE(v, -1e-15);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetwork,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace cmesolve::core
