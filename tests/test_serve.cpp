// Tests for the CME-as-a-service subsystem (src/serve/): result cache,
// warm-start contract, admission/priority scheduling — plus the regression
// tests for the PR's request-path bugfix sweep (transient truncation
// accounting, hardened JSON reader, warm_restart fallback).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "serve/cache.hpp"
#include "serve/controller.hpp"
#include "serve/workload.hpp"
#include "solver/transient.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "solver/operators.hpp"
#include "util/parallel.hpp"
#include "verify/json_reader.hpp"
#include "verify/repro_io.hpp"

namespace cmesolve::serve {
namespace {

bool bitwise_equal(std::span<const real_t> a, std::span<const real_t> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0;
}

real_t l1_distance(std::span<const real_t> a, std::span<const real_t> b) {
  real_t d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

/// Tiny birth-death chain: 41 states, solves in milliseconds.
verify::Scenario birth_death(real_t birth, real_t death) {
  verify::Scenario sc;
  sc.name = "bd";
  sc.archetype = "serve-test";
  sc.species.push_back({"X", 40});
  verify::ScenarioReaction b;
  b.name = "birth";
  b.rate = birth;
  b.changes.push_back({0, +1});
  sc.reactions.push_back(b);
  verify::ScenarioReaction d;
  d.name = "death";
  d.rate = death;
  d.reactants.push_back({0, 1});
  d.changes.push_back({0, -1});
  sc.reactions.push_back(d);
  sc.initial = {0};
  return sc;
}

/// Small phage lambda (the ISSUE's warm-start acceptance model), sized for
/// a unit test.
verify::Scenario small_phage() {
  core::models::PhageLambdaParams p;
  p.cap_ci = p.cap_cro = 5;
  p.cap_ci2 = p.cap_cro2 = 2;
  return scenario_from_network("phage-small", core::models::phage_lambda(p),
                               core::models::phage_lambda_initial(p), 200'000,
                               /*damping=*/0.95);
}

// ---------------------------------------------------------------------------
// Cache keying
// ---------------------------------------------------------------------------

TEST(ServeCache, FamilyKeyIgnoresRatesAndIdentity) {
  const verify::Scenario a = birth_death(2.0, 1.0);
  verify::Scenario b = birth_death(17.0, 0.25);
  b.name = "other-name";
  b.seed = 99;
  EXPECT_NE(cache_key(a), cache_key(b));
  EXPECT_EQ(family_key(a), family_key(b));

  verify::Scenario c = birth_death(2.0, 1.0);
  c.species[0].capacity = 41;  // different box => different family
  EXPECT_NE(family_key(a), family_key(c));

  verify::Scenario d = birth_death(2.0, 1.0);
  d.jacobi_damping = 0.5;  // different solver contract => different family
  EXPECT_NE(family_key(a), family_key(d));
}

TEST(ServeCache, LogRateDistanceMatchesContinuationMetric) {
  const verify::Scenario a = birth_death(2.0, 1.0);
  const verify::Scenario b = birth_death(2.0 * std::exp(1.0), 1.0);
  const real_t d2 = log_rate_dist2(log_rates(a), log_rates(b));
  EXPECT_NEAR(d2, 1.0, 1e-12);
  // Non-positive rates carry no log coordinates and never warm-start.
  verify::Scenario z = birth_death(2.0, 1.0);
  z.reactions[0].rate = 0.0;
  EXPECT_TRUE(log_rates(z).empty());
  EXPECT_TRUE(std::isinf(log_rate_dist2(log_rates(z), log_rates(a))));
}

TEST(ServeCache, LruEvictsOldestAndCountsIt) {
  ResultCache cache(2);
  cache.insert("k1", "f", {0.0}, {1.0});
  cache.insert("k2", "f", {0.0}, {1.0});
  ASSERT_NE(cache.find_exact("k1"), nullptr);  // bump k1; k2 is now oldest
  cache.insert("k3", "f", {0.0}, {1.0});
  EXPECT_EQ(cache.find_exact("k2"), nullptr);
  EXPECT_NE(cache.find_exact("k1"), nullptr);
  EXPECT_NE(cache.find_exact("k3"), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(ServeCache, NearProbeRespectsFamilyAndRadius) {
  ResultCache cache(8);
  cache.insert("a", "famA", {0.0}, {0.5, 0.5});
  cache.insert("b", "famB", {0.0}, {0.25, 0.75});
  cache.insert("c", "famA", {3.0}, {0.75, 0.25});
  const auto near = cache.find_near("famA", {0.1}, 1.0);
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->source_key, "a");
  EXPECT_NEAR(near->dist2, 0.01, 1e-12);
  // famB's closer coordinates must not leak across families.
  EXPECT_FALSE(cache.find_near("famC", {0.0}, 100.0).has_value());
  // Outside the radius: no seed.
  EXPECT_FALSE(cache.find_near("famA", {10.0}, 1.0).has_value());
}

// ---------------------------------------------------------------------------
// Daemon: cache hits, warm starts, scheduling
// ---------------------------------------------------------------------------

TEST(Serve, CacheHitIsBitwiseIdenticalToTheColdSolve) {
  ServeOptions opt;
  opt.workers = 1;
  Controller ctl(opt);
  const std::string wire = verify::serialize_repro(birth_death(2.0, 1.0));

  SolveResponse cold = ctl.submit(wire).get();
  ASSERT_EQ(cold.status, Status::kOk);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GT(cold.iterations, 0u);

  SolveResponse hit = ctl.submit(wire).get();
  ASSERT_EQ(hit.status, Status::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.iterations, 0u);
  EXPECT_TRUE(bitwise_equal(hit.p, cold.p));

  // Whitespace-distinct wire bytes of the same scenario hit too: the key is
  // the canonical re-serialization, not the raw input.
  SolveResponse hit2 = ctl.submit("  " + wire + "\n ").get();
  ASSERT_EQ(hit2.status, Status::kOk);
  EXPECT_TRUE(hit2.cache_hit);

  const ServeStats s = ctl.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cold_solves, 1u);
}

TEST(Serve, NearMissWarmStartConvergesToTheSameAnswerInFewerIterations) {
  const verify::Scenario base = small_phage();
  // A genuinely near miss: 2% on the CI synthesis rates. Jacobi's
  // asymptotic rate is start-independent, so the warm start buys the
  // log(err0 ratio) head start — at check_every=100 granularity that needs
  // the seed to be close to show up.
  verify::Scenario variant = base;
  variant.name = "phage-small-up";
  for (auto& r : variant.reactions) {
    if (r.name == "synthCI_basal" || r.name == "synthCI_active") r.rate *= 1.02;
  }

  // Cold reference for the variant (warm start off).
  ServeOptions cold_opt;
  cold_opt.workers = 1;
  cold_opt.warm_start = false;
  Controller cold_ctl(cold_opt);
  SolveResponse cold = cold_ctl.submit(verify::Scenario(variant)).get();
  ASSERT_EQ(cold.status, Status::kOk);
  ASSERT_FALSE(cold.warm_start_applied);

  // Warm path: solve the base first, then the near-miss variant.
  ServeOptions warm_opt;
  warm_opt.workers = 1;
  Controller warm_ctl(warm_opt);
  ASSERT_EQ(warm_ctl.submit(verify::Scenario(base)).get().status, Status::kOk);
  SolveResponse warm = warm_ctl.submit(verify::Scenario(variant)).get();
  ASSERT_EQ(warm.status, Status::kOk);
  EXPECT_FALSE(warm.cache_hit);
  EXPECT_TRUE(warm.warm_start_applied);
  EXPECT_GE(warm.warm_dist2, 0.0);

  // Same fixed point (both converged to eps), measurably fewer sweeps.
  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_LT(l1_distance(warm.p, cold.p), 1e-6);
}

TEST(Serve, UniformRateScalingWarmStartsToAnImmediateConvergence) {
  // Scaling every rate by the same factor scales A but not its null space:
  // the cached base solution IS the variant's stationary vector, so the
  // warm-started solve converges at the first residual check.
  const verify::Scenario base = birth_death(2.0, 1.0);
  verify::Scenario scaled = birth_death(2.0 * 1.5, 1.0 * 1.5);
  ServeOptions opt;
  opt.workers = 1;
  Controller ctl(opt);
  SolveResponse cold = ctl.submit(verify::Scenario(base)).get();
  ASSERT_EQ(cold.status, Status::kOk);
  SolveResponse warm = ctl.submit(verify::Scenario(scaled)).get();
  ASSERT_EQ(warm.status, Status::kOk);
  EXPECT_TRUE(warm.warm_start_applied);
  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_LE(warm.iterations, 100u);  // first check_every boundary
}

TEST(Serve, QueueFullShedsAndPriorityEvictsTheYoungestLowPriority) {
  ServeOptions opt;
  opt.workers = 1;
  opt.queue_capacity = 2;
  opt.start_paused = true;  // park the worker: admission is deterministic
  Controller ctl(opt);
  const std::string wire = verify::serialize_repro(birth_death(2.0, 1.0));

  auto f1 = ctl.submit(wire, Priority::kNormal);
  auto f2 = ctl.submit(wire, Priority::kNormal);
  EXPECT_EQ(ctl.queue_depth(), 2u);

  // Queue full + no lower-priority victim => the incoming request sheds.
  SolveResponse shed = ctl.submit(wire, Priority::kNormal).get();
  EXPECT_EQ(shed.status, Status::kShed);
  EXPECT_EQ(shed.error, "queue full");

  // An interactive request evicts the YOUNGEST normal entry (f2), not f1.
  auto f3 = ctl.submit(wire, Priority::kInteractive);
  SolveResponse evicted = f2.get();
  EXPECT_EQ(evicted.status, Status::kShed);
  EXPECT_EQ(evicted.error, "evicted by a higher-priority request");
  EXPECT_EQ(ctl.queue_depth(), 2u);

  ctl.resume();
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f3.get().status, Status::kOk);

  const ServeStats s = ctl.stats();
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.queue_evicted, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(Serve, MalformedWireRequestsAreInvalidNotQueued) {
  ServeOptions opt;
  opt.workers = 1;
  Controller ctl(opt);
  SolveResponse bad = ctl.submit("{not json").get();
  EXPECT_EQ(bad.status, Status::kInvalid);
  EXPECT_NE(bad.error.find("json:"), std::string::npos);
  SolveResponse bad2 = ctl.submit("{\"schema\": \"nope/9\"}").get();
  EXPECT_EQ(bad2.status, Status::kInvalid);
  const ServeStats s = ctl.stats();
  EXPECT_EQ(s.invalid, 2u);
  EXPECT_EQ(s.submitted, 2u);
}

TEST(Serve, ResponsesAreBitIdenticalAcrossThreadBudgetsAndWorkerCounts) {
  // The InlineRegion contract: a solve inside the daemon takes the serial
  // path whatever CMESOLVE_THREADS resolves to, so responses are bitwise
  // stable across thread budgets AND worker-pool sizes.
  const std::string wire = verify::serialize_repro(birth_death(3.0, 1.25));
  std::vector<real_t> reference;
  for (const int threads : {1, 8}) {
    util::set_max_threads(threads);
    for (const int workers : {1, 4}) {
      ServeOptions opt;
      opt.workers = workers;
      Controller ctl(opt);
      SolveResponse r = ctl.submit(wire).get();
      ASSERT_EQ(r.status, Status::kOk);
      if (reference.empty()) {
        reference = r.p;
      } else {
        EXPECT_TRUE(bitwise_equal(r.p, reference))
            << "threads=" << threads << " workers=" << workers;
      }
    }
  }
  util::set_max_threads(0);
}

TEST(Serve, AbsorbingScenarioFailsWithTheSolverDiagnostic) {
  // Pure-death chain from X=40: state 0 is absorbing => zero diagonal.
  verify::Scenario sc = birth_death(2.0, 1.0);
  sc.reactions.erase(sc.reactions.begin());  // drop birth
  sc.initial = {40};
  ServeOptions opt;
  opt.workers = 1;
  Controller ctl(opt);
  SolveResponse r = ctl.submit(verify::Scenario(sc)).get();
  EXPECT_EQ(r.status, Status::kFailed);
  EXPECT_NE(r.error.find("zero diagonal"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Load harness
// ---------------------------------------------------------------------------

TEST(ServeLoad, ZipfTraceIsDeterministicAndSkewed) {
  const auto t1 = zipf_trace(16, 1.1, 500, 7);
  const auto t2 = zipf_trace(16, 1.1, 500, 7);
  EXPECT_EQ(t1, t2);
  std::vector<int> histo(16, 0);
  for (const std::size_t r : t1) {
    ASSERT_LT(r, 16u);
    ++histo[r];
  }
  // Rank 0 must dominate the tail rank under s=1.1.
  EXPECT_GT(histo[0], histo[15] * 2);
}

TEST(ServeLoad, ClosedLoopDeterministicModeServesEveryRequest) {
  ServeOptions sopt;
  sopt.workers = 1;
  Controller ctl(sopt);
  std::vector<SweepFamily> fams;
  fams.push_back(make_sweep_family(birth_death(2.0, 1.0), 6, 0.2, 11));
  LoadOptions lopt;
  lopt.requests = 40;
  lopt.clients = 1;
  lopt.think_seconds = 0.0;
  lopt.seed = 11;
  const LoadReport rep = run_closed_loop(ctl, fams, lopt);
  EXPECT_EQ(rep.requests, 40u);
  EXPECT_EQ(rep.ok, 40u);
  EXPECT_EQ(rep.shed + rep.failed + rep.invalid, 0u);
  // 6 variants, 40 Zipf-skewed requests: most are repeats.
  EXPECT_GT(rep.cache_hits, 20u);
  EXPECT_GE(rep.warm_starts + rep.cold_solves, 1u);
  EXPECT_EQ(rep.cache_hits + rep.warm_starts + rep.cold_solves, rep.ok);
}

// ---------------------------------------------------------------------------
// Bugfix regressions: transient truncation accounting
// ---------------------------------------------------------------------------

sparse::Csr two_state(real_t up, real_t down) {
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, -up);
  c.add(1, 0, up);
  c.add(0, 1, down);
  c.add(1, 1, -down);
  return sparse::csr_from_coo(std::move(c));
}

TEST(TransientRegression, EpsBelowTheMassFloorTerminatesViaTailExhaustion) {
  // The accumulated Poisson mass carries ~1e-12 of rounding error, so with
  // eps below the accumulation floor the `mass >= 1 - eps` test can never
  // fire. Before the fix this spun all the way to max_terms doing
  // zero-weight SpMVs and then reported the complete series as
  // truncated_early. (eps = 0 itself is rejected up front these days —
  // see Transient.OptionValidationThrowsCleanly — so the smallest positive
  // double stands in for it here.)
  const sparse::Csr a = two_state(2.0, 1.0);
  const solver::CsrOperator op(a);
  std::vector<real_t> p = {1.0, 0.0};
  solver::TransientOptions opt;
  opt.eps = 1e-300;
  opt.max_terms = 100'000;
  const auto res = solver::transient_solve(op, 5.0, std::span<real_t>(p), opt);
  EXPECT_TRUE(res.tail_exhausted);
  EXPECT_FALSE(res.truncated_early);
  // lambda*t ~ 10: the series is numerically complete within a few hundred
  // terms, nowhere near the cap.
  EXPECT_LT(res.matvecs, 1000u);
  EXPECT_NEAR(res.covered_mass, 1.0, 1e-9);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  // And the answer matches the analytic stationary limit at large t.
  EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-6);
}

TEST(TransientRegression, PartialTruncationReportsCoveredMassAndRenormalizes) {
  const sparse::Csr a = two_state(2.0, 1.0);
  const solver::CsrOperator op(a);
  std::vector<real_t> p = {1.0, 0.0};
  solver::TransientOptions opt;
  opt.max_terms = 30;  // Poisson mean ~60: cut mid-bulk
  const auto res = solver::transient_solve(op, 20.0, std::span<real_t>(p), opt);
  EXPECT_TRUE(res.truncated_early);
  EXPECT_FALSE(res.tail_exhausted);
  EXPECT_GT(res.covered_mass, 0.0);
  EXPECT_LT(res.covered_mass, 0.9);
  // The truncated series is renormalized by the covered mass: still a
  // proper distribution.
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(TransientRegression, HeadUnderflowBeforeTheBulkLeavesPUntouched) {
  // max_terms far below the Poisson mean: every computed weight underflows
  // (log w_k ~ -m at small k), covered mass is exactly 0, and p must come
  // back unchanged — NOT renormalized garbage, and NOT tail_exhausted
  // (the guard requires k past the mean so a zero HEAD weight cannot end
  // the series).
  const sparse::Csr a = two_state(2.0, 1.0);
  const solver::CsrOperator op(a);
  std::vector<real_t> p = {0.25, 0.75};
  solver::TransientOptions opt;
  opt.max_terms = 5;  // mean lambda*t ~ 2000
  const auto res =
      solver::transient_solve(op, 700.0, std::span<real_t>(p), opt);
  EXPECT_TRUE(res.truncated_early);
  EXPECT_FALSE(res.tail_exhausted);
  EXPECT_EQ(res.covered_mass, 0.0);
  EXPECT_EQ(p[0], 0.25);
  EXPECT_EQ(p[1], 0.75);
}

// ---------------------------------------------------------------------------
// Bugfix regressions: hardened JSON reader / wire limits
// ---------------------------------------------------------------------------

TEST(JsonRegression, NestingBombIsRejectedNotAStackOverflow) {
  // 5000 unbalanced '[' used to recurse 5000 frames deep; the default cap
  // (256) now rejects it with a diagnostic.
  const std::string bomb(5000, '[');
  try {
    (void)verify::parse_json(bomb);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper than 256"),
              std::string::npos);
  }
}

TEST(JsonRegression, WireLimitsCapDepthAtTwentyFour) {
  std::string deep;
  for (int i = 0; i < 30; ++i) deep += "[";
  for (int i = 0; i < 30; ++i) deep += "]";
  EXPECT_NO_THROW((void)verify::parse_json(deep));  // default cap: fine
  EXPECT_THROW((void)verify::parse_json(deep, verify::kWireJsonLimits),
               std::runtime_error);
}

TEST(JsonRegression, DuplicateKeysRejectedOnTheWirePreservedByDefault) {
  const std::string doc = R"({"rate": 1, "rate": 1e9})";
  // Default parser preserves duplicates — the report schema oracle counts
  // them itself.
  const verify::JsonValue v = verify::parse_json(doc);
  EXPECT_EQ(v.count("rate"), 2u);
  // Wire traffic rejects them: {"rate":1,"rate":1e9} would otherwise bind
  // the first and silently drop the second.
  verify::JsonLimits lim;
  lim.reject_duplicate_keys = true;
  try {
    (void)verify::parse_json(doc, lim);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key \"rate\""),
              std::string::npos);
  }
}

TEST(JsonRegression, ParseErrorsCarryLineAndColumn) {
  const std::string doc = "{\n  \"a\": 1,\n  \"b\": oops\n}";
  try {
    (void)verify::parse_json(doc);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column"), std::string::npos) << msg;
  }
}

TEST(JsonRegression, TrailingGarbageIsRejected) {
  EXPECT_THROW((void)verify::parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)verify::parse_json("[1,2,3] 4"), std::runtime_error);
  EXPECT_NO_THROW((void)verify::parse_json("{}  \n"));
}

TEST(JsonRegression, SizeCapBoundsUntrustedInput) {
  verify::JsonLimits lim;
  lim.max_bytes = 16;
  EXPECT_NO_THROW((void)verify::parse_json("[1, 2, 3]", lim));
  try {
    (void)verify::parse_json("[1, 2, 3, 4, 5, 6]", lim);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the 16-byte limit"),
              std::string::npos);
  }
}

TEST(JsonRegression, ParseReproEnforcesWireLimitsEndToEnd) {
  // A canonical document round-trips fine...
  const std::string good = verify::serialize_repro(birth_death(2.0, 1.0));
  EXPECT_NO_THROW((void)verify::parse_repro(good));
  // ...a duplicated top-level key does not.
  std::string dup = good;
  const std::string needle = "\"seed\": 0,";
  const auto pos = dup.find(needle);
  ASSERT_NE(pos, std::string::npos);
  dup.insert(pos, "\"seed\": 7,\n  ");
  EXPECT_THROW((void)verify::parse_repro(dup), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Bugfix regressions: warm_restart fallback instead of size-mismatch UB
// ---------------------------------------------------------------------------

TEST(WarmRestartRegression, ValidRemapStillScattersAndNormalizes) {
  const std::vector<real_t> prev = {0.2, 0.6, 0.2};
  const std::vector<index_t> remap = {0, 2, -1};  // state 1 -> 2, last pruned
  std::vector<real_t> out(4, -1.0);
  EXPECT_TRUE(solver::warm_restart(prev, remap, out));
  EXPECT_NEAR(out[0], 0.25, 1e-15);
  EXPECT_NEAR(out[1], 0.0, 1e-15);
  EXPECT_NEAR(out[2], 0.75, 1e-15);
  EXPECT_NEAR(out[3], 0.0, 1e-15);
}

TEST(WarmRestartRegression, LengthMismatchFallsBackToUniform) {
  // A cached vector from a different FSP round (pruned/expanded set): the
  // remap no longer matches. Before the fix this was an assert in debug
  // builds and out-of-bounds UB in release.
  const std::vector<real_t> prev = {0.5, 0.5};
  const std::vector<index_t> remap = {0, 1, 2};  // stale: 3 entries
  std::vector<real_t> out(4, -1.0);
  EXPECT_FALSE(solver::warm_restart(prev, remap, out));
  for (const real_t v : out) EXPECT_EQ(v, 0.25);
}

TEST(WarmRestartRegression, OutOfRangeTargetFallsBackToUniform) {
  const std::vector<real_t> prev = {0.5, 0.5};
  const std::vector<index_t> remap = {0, 7};  // 7 is outside out
  std::vector<real_t> out(3, -1.0);
  EXPECT_FALSE(solver::warm_restart(prev, remap, out));
  for (const real_t v : out) EXPECT_NEAR(v, 1.0 / 3.0, 1e-15);
}

TEST(WarmRestartRegression, AllMassDroppedFallsBackToUniform) {
  // Every surviving entry pruned: the scatter carries zero probability and
  // a normalize would be a silent no-op on the zero vector.
  const std::vector<real_t> prev = {0.5, 0.5};
  const std::vector<index_t> remap = {-1, -1};
  std::vector<real_t> out(5, 0.0);
  EXPECT_FALSE(solver::warm_restart(prev, remap, out));
  for (const real_t v : out) EXPECT_EQ(v, 0.2);
}

TEST(WarmRestartRegression, ServeRecordsWarmStartAppliedHonestly) {
  // A cache seed that cannot fit (different max_states => different family,
  // so it is never offered) — here we check the response flag through the
  // public path: first solve cold, near-miss warm, and the flags disagree.
  ServeOptions opt;
  opt.workers = 1;
  Controller ctl(opt);
  SolveResponse cold = ctl.submit(verify::Scenario(birth_death(2.0, 1.0))).get();
  ASSERT_EQ(cold.status, Status::kOk);
  EXPECT_FALSE(cold.warm_start_applied);
  EXPECT_LT(cold.warm_dist2, 0.0);
  SolveResponse warm =
      ctl.submit(verify::Scenario(birth_death(2.1, 1.0))).get();
  ASSERT_EQ(warm.status, Status::kOk);
  EXPECT_TRUE(warm.warm_start_applied);
  EXPECT_GE(warm.warm_dist2, 0.0);
}

}  // namespace
}  // namespace cmesolve::serve
