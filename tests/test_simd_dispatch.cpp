// Runtime SIMD dispatch: selection mechanics and the cross-ISA bitwise
// parity contract.
//
// The explicit kernel layer (util/simd_kernels.hpp) promises that every
// compiled ISA table — scalar, SSE2, AVX2, AVX-512, NEON — produces the
// SAME BITS: vectorization runs across independent states or lanes, never
// inside a row's reduction, and every TU compiles with -ffp-contract=off.
// This suite pins that promise the same way test_parallel_determinism pins
// the thread-count contract: the fuzzer's adversarial scenario families are
// solved to a stationary vector under every compiled ISA at 1 and 8
// threads, and every solution entry, stop reason, iteration count and
// flight-recorder signature must compare EXACTLY against the forced-scalar
// single-thread reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "solver/batched.hpp"
#include "solver/jacobi.hpp"
#include "solver/krylov_expm.hpp"
#include "solver/stencil_operator.hpp"
#include "solver/transient.hpp"
#include "solver/vector_ops.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/simd_kernels.hpp"
#include "verify/scenario.hpp"

namespace cmesolve {
namespace {

namespace simd = util::simd;

/// RAII thread-budget override; restores auto-detection on scope exit.
class ThreadBudget {
 public:
  explicit ThreadBudget(int n) { util::set_max_threads(n); }
  ~ThreadBudget() { util::set_max_threads(0); }
  ThreadBudget(const ThreadBudget&) = delete;
  ThreadBudget& operator=(const ThreadBudget&) = delete;
};

/// RAII ISA override; always lands back on auto-dispatch.
class ForcedIsa {
 public:
  explicit ForcedIsa(simd::Isa isa) : ok_(simd::force_isa(isa)) {}
  ~ForcedIsa() { simd::reset_forced_isa(); }
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  ForcedIsa(const ForcedIsa&) = delete;
  ForcedIsa& operator=(const ForcedIsa&) = delete;

 private:
  bool ok_;
};

TEST(SimdDispatch, ParseRoundTripsEveryIsaName) {
  for (const simd::Isa isa : simd::compiled_isas()) {
    simd::Isa parsed{};
    ASSERT_TRUE(simd::parse_isa(simd::to_string(isa), parsed))
        << simd::to_string(isa);
    EXPECT_EQ(parsed, isa);
  }
  simd::Isa out{};
  EXPECT_FALSE(simd::parse_isa("pentium-mmx", out));
  EXPECT_FALSE(simd::parse_isa("", out));
}

TEST(SimdDispatch, CompiledIsasStartAtScalarAndWidenMonotonically) {
  const auto& isas = simd::compiled_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  int prev = 0;
  for (const simd::Isa isa : isas) {
    EXPECT_GE(simd::isa_width(isa), prev);
    prev = simd::isa_width(isa);
  }
  EXPECT_EQ(simd::isa_width(simd::Isa::kScalar), 1);
}

TEST(SimdDispatch, KernelTableMatchesEveryCompiledIsa) {
  for (const simd::Isa isa : simd::compiled_isas()) {
    const util::simdk::KernelOps& ops = util::simdk::kernels_for(isa);
    EXPECT_EQ(ops.isa, isa);
    EXPECT_EQ(ops.width, simd::isa_width(isa));
    EXPECT_STREQ(ops.name, simd::to_string(isa));
  }
}

TEST(SimdDispatch, ForceSelectsAndResetRestoresAuto) {
  const simd::Isa detected = simd::active_isa();
  {
    ForcedIsa f(simd::Isa::kScalar);
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
    EXPECT_STREQ(simd::active_isa_name(), "scalar");
  }
  EXPECT_EQ(simd::active_isa(), detected);
}

TEST(SimdDispatch, EnvVarForcesScalarAndUnknownFallsBackToAuto) {
  // CI runs this suite with CMESOLVE_SIMD already exported; park the outer
  // value so the auto-pick baseline is the true CPUID choice, and restore
  // it on the way out for the tests that follow.
  const char* outer_env = ::getenv("CMESOLVE_SIMD");
  const std::string outer = outer_env ? outer_env : "";
  ::unsetenv("CMESOLVE_SIMD");
  simd::reset_forced_isa();
  const simd::Isa detected = simd::active_isa();
  ::setenv("CMESOLVE_SIMD", "scalar", 1);
  simd::reset_forced_isa();  // drops the cached auto pick -> env re-read
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);

  ::setenv("CMESOLVE_SIMD", "vliw-itanium", 1);
  simd::reset_forced_isa();
  EXPECT_EQ(simd::active_isa(), detected);  // warn + auto, never a throw

  ::unsetenv("CMESOLVE_SIMD");
  simd::reset_forced_isa();
  EXPECT_EQ(simd::active_isa(), detected);

  if (outer_env != nullptr) ::setenv("CMESOLVE_SIMD", outer.c_str(), 1);
  simd::reset_forced_isa();
}

// ---------------------------------------------------------------------------
// Cross-ISA parity on the fuzzer's scenario families.
// ---------------------------------------------------------------------------

struct SolveRun {
  std::vector<real_t> x;
  solver::JacobiResult res;
  std::uint64_t flight_sig = 0;
};

/// Full stencil-path Jacobi solve of one scenario with the flight recorder
/// capturing the residual stream. Bounded iterations: parity cares that
/// every ISA walks the SAME trajectory, converged or not.
SolveRun solve_scenario(const verify::Scenario& sc) {
  const auto net = verify::build_network(sc);
  const solver::StencilOperator op(net, sc.initial);
  solver::JacobiOptions jopt;
  jopt.eps = sc.jacobi_eps;
  jopt.stagnation_eps = sc.jacobi_stagnation_eps;
  jopt.max_iterations = 2000;
  jopt.damping = sc.jacobi_damping;

  SolveRun out;
  out.x.resize(static_cast<std::size_t>(op.nrows()));
  solver::fill_uniform(out.x);
  auto& flight = obs::FlightRecorder::instance();
  flight.enable();
  out.res = solver::jacobi_solve(op, op.inf_norm(), out.x, jopt);
  out.flight_sig = flight.content_signature();
  flight.disable();
  return out;
}

bool bitwise_equal(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

TEST(SimdDispatchParity, ScenarioFamiliesMatchScalarAtEveryIsaAndThreadCount) {
  // Seeds 0..7 cycle the generator's archetype list, so every adversarial
  // family is represented at least once.
  const std::size_t families = verify::scenario_archetypes().size();
  for (std::uint64_t seed = 0; seed < std::max<std::size_t>(families, 8);
       ++seed) {
    const verify::Scenario sc = verify::random_scenario(seed);
    if (sc.expect != verify::Expectation::kSteadyState) continue;

    SolveRun ref;
    {
      ThreadBudget serial(1);
      ForcedIsa scalar(simd::Isa::kScalar);
      ASSERT_TRUE(scalar.ok());
      ref = solve_scenario(sc);
    }
    for (const simd::Isa isa : simd::compiled_isas()) {
      for (const int threads : {1, 8}) {
        ThreadBudget budget(threads);
        ForcedIsa forced(isa);
        if (!forced.ok()) continue;  // compiled in, CPU lacks it
        const SolveRun run = solve_scenario(sc);
        const std::string ctx = sc.name + " isa=" + simd::to_string(isa) +
                                " threads=" + std::to_string(threads);
        EXPECT_TRUE(bitwise_equal(run.x, ref.x)) << ctx;
        EXPECT_EQ(run.res.iterations, ref.res.iterations) << ctx;
        EXPECT_EQ(run.res.reason, ref.res.reason) << ctx;
        // residual is part of the trajectory, so bitwise too
        EXPECT_EQ(run.res.residual, ref.res.residual) << ctx;
        EXPECT_EQ(run.flight_sig, ref.flight_sig) << ctx;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Transient-engine parity: both exp(tA) engines ride the same kernel table
// and chunked reductions as Jacobi, so a uniformization series and a Krylov
// propagation must be bitwise identical at every ISA and thread count —
// including the flight-recorder stream they emit.
// ---------------------------------------------------------------------------

struct TransientRun {
  std::vector<real_t> pu;  // uniformization output
  std::vector<real_t> pk;  // Krylov output
  solver::TransientResult ru;
  solver::KrylovExpmResult rk;
  std::uint64_t flight_sig = 0;
};

TransientRun transient_scenario(const verify::Scenario& sc) {
  const auto net = verify::build_network(sc);
  const solver::StencilOperator op(net, sc.initial);
  real_t dmax = 0.0;
  for (const real_t d : op.diag()) dmax = std::max(dmax, std::abs(d));
  const real_t t = dmax > 0.0 ? 2.0 / dmax : 1.0;
  const auto n = static_cast<std::size_t>(op.nrows());

  TransientRun out;
  out.pu.resize(n);
  solver::fill_uniform(out.pu);  // any distribution works for parity
  out.pk = out.pu;
  auto& flight = obs::FlightRecorder::instance();
  flight.enable();
  solver::TransientOptions topt;
  topt.max_step_mean = 1.0;  // force sub-stepping -> more events to compare
  out.ru = solver::transient_solve(op, t, out.pu, topt);
  solver::KrylovExpmOptions kopt;
  kopt.tol = 1e-13;
  out.rk = solver::krylov_expm_solve(op, t, out.pk, kopt);
  out.flight_sig = flight.content_signature();
  flight.disable();
  return out;
}

TEST(SimdDispatchParity, TransientEnginesMatchScalarAtEveryIsaAndThreadCount) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const verify::Scenario sc = verify::random_scenario(seed);

    TransientRun ref;
    {
      ThreadBudget serial(1);
      ForcedIsa scalar(simd::Isa::kScalar);
      ASSERT_TRUE(scalar.ok());
      ref = transient_scenario(sc);
    }
    for (const simd::Isa isa : simd::compiled_isas()) {
      for (const int threads : {1, 2, 8}) {
        ThreadBudget budget(threads);
        ForcedIsa forced(isa);
        if (!forced.ok()) continue;  // compiled in, CPU lacks it
        const TransientRun run = transient_scenario(sc);
        const std::string ctx = sc.name + " isa=" + simd::to_string(isa) +
                                " threads=" + std::to_string(threads);
        EXPECT_TRUE(bitwise_equal(run.pu, ref.pu)) << ctx;
        EXPECT_TRUE(bitwise_equal(run.pk, ref.pk)) << ctx;
        EXPECT_EQ(run.ru.matvecs, ref.ru.matvecs) << ctx;
        EXPECT_EQ(run.ru.steps, ref.ru.steps) << ctx;
        EXPECT_EQ(run.ru.covered_mass, ref.ru.covered_mass) << ctx;
        EXPECT_EQ(run.rk.matvecs, ref.rk.matvecs) << ctx;
        EXPECT_EQ(run.rk.steps, ref.rk.steps) << ctx;
        EXPECT_EQ(run.rk.error_estimate, ref.rk.error_estimate) << ctx;
        EXPECT_EQ(run.flight_sig, ref.flight_sig) << ctx;
      }
    }
  }
}

TEST(SimdDispatchParity, BatchedLanesMatchScalarAtEveryIsa) {
  // Batched operator over one scenario network with K=5 perturbed rate
  // sets: an odd width exercises the vector body AND the scalar lane tail
  // in the same sweep.
  const verify::Scenario sc = verify::random_scenario(3);
  const auto net = verify::build_network(sc);
  const solver::StencilOperator anchor(net, sc.initial);
  const solver::EnsembleStructure structure(anchor.table());
  constexpr int kLanes = 5;
  std::vector<std::vector<real_t>> rates;
  for (int j = 0; j < kLanes; ++j) {
    std::vector<real_t> rj;
    for (int r = 0; r < net.num_reactions(); ++r) {
      rj.push_back(net.reaction(r).rate * (1.0 + 0.125 * j));
    }
    rates.push_back(std::move(rj));
  }
  const solver::BatchedStencilOperator bop(structure, rates);
  const auto n = static_cast<std::size_t>(anchor.nrows());
  std::vector<real_t> x(n * kLanes);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 / static_cast<real_t>(3 + (i % 17));
  }
  std::vector<real_t> y(n * kLanes);
  std::vector<real_t> y_ref(n * kLanes);
  {
    ForcedIsa scalar(simd::Isa::kScalar);
    ASSERT_TRUE(scalar.ok());
    bop.multiply(x, y_ref);
  }
  for (const simd::Isa isa : simd::compiled_isas()) {
    for (const int threads : {1, 8}) {
      ThreadBudget budget(threads);
      ForcedIsa forced(isa);
      if (!forced.ok()) continue;
      bop.multiply(x, y);
      EXPECT_TRUE(bitwise_equal(y, y_ref))
          << "isa=" << simd::to_string(isa) << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace cmesolve
