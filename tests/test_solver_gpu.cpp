// Tests for the simulated-GPU Jacobi solve (Table IV machinery).
#include <gtest/gtest.h>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::solver {
namespace {

sparse::Csr toggle_matrix(std::int32_t cap) {
  core::models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = cap;
  const auto net = core::models::toggle_switch(p);
  const core::StateSpace space(net, core::models::toggle_switch_initial(p),
                               1'000'000);
  return core::rate_matrix(space);
}

TEST(GpuJacobi, NumericsIdenticalToHostSolve) {
  const auto a = toggle_matrix(12);
  JacobiOptions opt;
  opt.eps = 1e-10;

  std::vector<real_t> p_host(static_cast<std::size_t>(a.nrows));
  fill_uniform(p_host);
  WarpedEllDiaOperator op(a);
  const auto host = jacobi_solve(op, a.inf_norm(), p_host, opt);

  std::vector<real_t> p_gpu(static_cast<std::size_t>(a.nrows));
  fill_uniform(p_gpu);
  const auto gpu =
      gpu_jacobi_solve(gpusim::DeviceSpec::gtx580(), a, p_gpu, opt);

  EXPECT_EQ(gpu.result.iterations, host.iterations);
  EXPECT_DOUBLE_EQ(gpu.result.residual, host.residual);
  for (std::size_t i = 0; i < p_host.size(); ++i) {
    EXPECT_DOUBLE_EQ(p_gpu[i], p_host[i]);
  }
}

TEST(GpuJacobi, SimulatedCostIsPlausible) {
  const auto a = toggle_matrix(20);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  const auto gpu = gpu_jacobi_solve(gpusim::DeviceSpec::gtx580(), a, p);

  EXPECT_GT(gpu.sweep.seconds, 0.0);
  EXPECT_GT(gpu.sim_seconds,
            static_cast<real_t>(gpu.result.iterations) * gpu.sweep.seconds *
                0.99);
  // A bandwidth-bound double-precision kernel on a 192 GB/s part cannot
  // exceed the cached-roofline peak the paper derives (34.4 GFLOPS).
  EXPECT_GT(gpu.sim_gflops, 0.5);
  EXPECT_LT(gpu.sim_gflops, 34.4);
}

TEST(GpuJacobi, FasterDeviceSolvesFaster) {
  const auto a = toggle_matrix(20);
  std::vector<real_t> p1(static_cast<std::size_t>(a.nrows));
  std::vector<real_t> p2(static_cast<std::size_t>(a.nrows));
  fill_uniform(p1);
  fill_uniform(p2);
  const auto fermi = gpu_jacobi_solve(gpusim::DeviceSpec::gtx580(), a, p1);
  const auto kepler = gpu_jacobi_solve(gpusim::DeviceSpec::kepler_k20(), a, p2);
  EXPECT_EQ(fermi.result.iterations, kepler.result.iterations);
  EXPECT_LT(kepler.sim_seconds, fermi.sim_seconds);
}

TEST(GpuJacobi, SolutionIsStationary) {
  const auto a = toggle_matrix(15);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 1e-11;
  const auto gpu = gpu_jacobi_solve(gpusim::DeviceSpec::gtx580(), a, p, opt);
  EXPECT_EQ(gpu.result.reason, StopReason::kConverged);

  std::vector<real_t> ap(static_cast<std::size_t>(a.nrows));
  sparse::spmv(a, p, ap);
  EXPECT_LT(norm_inf(ap), 1e-8 * a.inf_norm());
}

}  // namespace
}  // namespace cmesolve::solver
