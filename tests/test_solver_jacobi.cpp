// Tests for the Jacobi solver: exact stationary distributions, probability
// invariants, stopping behaviour, operator equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::solver {
namespace {

using core::ReactionNetwork;
using core::State;
using core::StateSpace;

/// Immigration-death process: 0 -> X (rate lambda), X -> 0 (rate mu * x).
/// Stationary distribution = Poisson(lambda/mu) truncated at the buffer.
sparse::Csr immigration_death_matrix(std::int32_t cap, real_t lambda,
                                     real_t mu) {
  ReactionNetwork net;
  const int x = net.add_species("X", cap);
  net.add_reaction("birth", lambda, {}, {{x, +1}});
  net.add_reaction("death", mu, {{x, 1}}, {{x, -1}});
  const StateSpace space(net, State{0}, 100000);
  return core::rate_matrix(space);
}

std::vector<real_t> truncated_poisson(std::int32_t cap, real_t rate) {
  std::vector<real_t> pi(static_cast<std::size_t>(cap) + 1);
  real_t term = 1.0;
  pi[0] = 1.0;
  for (std::int32_t k = 1; k <= cap; ++k) {
    term *= rate / static_cast<real_t>(k);
    pi[static_cast<std::size_t>(k)] = term;
  }
  real_t sum = 0;
  for (real_t v : pi) sum += v;
  for (real_t& v : pi) v /= sum;
  return pi;
}

TEST(Jacobi, ImmigrationDeathMatchesTruncatedPoisson) {
  const auto a = immigration_death_matrix(30, 6.0, 1.0);
  const auto exact = truncated_poisson(30, 6.0);

  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 1e-12;
  // A 1-D birth-death chain is bipartite, so the plain Jacobi iteration
  // matrix carries a -1 mode; the weighted variant removes it (the paper's
  // 2-D+ CME state spaces are not bipartite and run undamped).
  opt.damping = 0.7;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], exact[i], 1e-8) << i;
  }
}

TEST(Jacobi, TwoStateExactSolution) {
  // 0 <-> 1 with rates a (up) and b (down): pi = (b, a) / (a+b).
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  const real_t up = 3.0;
  const real_t down = 5.0;
  c.add(0, 0, -up);
  c.add(1, 0, up);
  c.add(0, 1, down);
  c.add(1, 1, -down);
  const auto a = sparse::csr_from_coo(std::move(c));

  CsrOperator op(a);
  std::vector<real_t> p{0.9, 0.1};
  JacobiOptions opt;
  opt.eps = 1e-13;
  opt.check_every = 10;
  // Plain Jacobi on a 2-state chain oscillates (iteration matrix eigenvalue
  // -1); the weighted variant is the textbook fix.
  opt.damping = 0.5;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  EXPECT_NEAR(p[0], down / (up + down), 1e-10);
  EXPECT_NEAR(p[1], up / (up + down), 1e-10);
}

TEST(Jacobi, SolutionIsProbabilityVector) {
  const auto a = immigration_death_matrix(20, 4.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  (void)jacobi_solve(op, a.inf_norm(), p);
  real_t sum = 0.0;
  for (real_t v : p) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Jacobi, AllOperatorsProduceTheSameSolution) {
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 12;
  const auto net = core::models::toggle_switch(tp);
  const StateSpace space(net, core::models::toggle_switch_initial(tp), 100000);
  const auto a = core::rate_matrix(space);
  const real_t norm = a.inf_norm();
  JacobiOptions opt;
  opt.eps = 1e-11;

  const auto solve_with = [&](auto&& op) {
    std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
    fill_uniform(p);
    const auto r = jacobi_solve(op, norm, p, opt);
    EXPECT_EQ(r.reason, StopReason::kConverged);
    return p;
  };

  const auto p_csr = solve_with(CsrOperator(a));
  const auto p_csrdia = solve_with(CsrDiaOperator(a));
  const auto p_elldia = solve_with(EllDiaOperator(a));
  const auto p_warped = solve_with(WarpedEllDiaOperator(a));

  for (std::size_t i = 0; i < p_csr.size(); ++i) {
    EXPECT_NEAR(p_csr[i], p_csrdia[i], 1e-12);
    EXPECT_NEAR(p_csr[i], p_elldia[i], 1e-12);
    EXPECT_NEAR(p_csr[i], p_warped[i], 1e-12);
  }
}

TEST(Jacobi, ResidualIsTheSteadyStateDefect) {
  // At the exact stationary vector the normalized residual is ~0, so the
  // solver should stop immediately.
  const auto a = immigration_death_matrix(15, 2.0, 1.0);
  auto p = truncated_poisson(15, 2.0);
  CsrOperator op(a);
  JacobiOptions opt;
  opt.check_every = 1;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  EXPECT_LE(r.iterations, 2u);
}

TEST(Jacobi, MaxIterationsStop) {
  const auto a = immigration_death_matrix(25, 5.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 0.0;  // unreachable
  opt.stagnation_eps = 0.0;
  opt.max_iterations = 500;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kMaxIterations);
  EXPECT_EQ(r.iterations, 500u);
}

TEST(Jacobi, StagnationDetected) {
  const auto a = immigration_death_matrix(25, 5.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 1e-300;        // unreachably tight
  opt.stagnation_eps = 0.5;  // very loose: triggers once progress slows
  opt.max_iterations = 200000;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kStagnated);
  EXPECT_LT(r.iterations, 200000u);
}

TEST(Jacobi, ZeroDiagonalRejected) {
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, -1.0);
  c.add(1, 0, 1.0);  // state 1 is absorbing: zero diagonal
  const auto a = sparse::csr_from_coo(std::move(c));
  CsrOperator op(a);
  std::vector<real_t> p{0.5, 0.5};
  EXPECT_THROW((void)jacobi_solve(op, 1.0, p), std::domain_error);
}

TEST(Jacobi, SizeMismatchRejected) {
  const auto a = immigration_death_matrix(5, 1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p(3);
  EXPECT_THROW((void)jacobi_solve(op, a.inf_norm(), p), std::invalid_argument);
}

TEST(Jacobi, DampedMatchesPlainSolution) {
  const auto a = immigration_death_matrix(20, 3.0, 1.0);
  const auto exact = truncated_poisson(20, 3.0);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 1e-12;
  opt.damping = 0.7;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], exact[i], 1e-8);
  }
}

TEST(Jacobi, FlopAccounting) {
  const auto a = immigration_death_matrix(10, 2.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 0.0;
  opt.stagnation_eps = 0.0;
  opt.max_iterations = 100;
  opt.check_every = 50;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  const std::uint64_t per_sweep = 2ULL * op.offdiag_nnz() + 11ULL;
  EXPECT_EQ(r.flops, per_sweep * (100 + 2));  // 100 sweeps + 2 residuals
}

TEST(Jacobi, ResidualTraceCallback) {
  const auto a = immigration_death_matrix(15, 3.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 1e-10;
  opt.check_every = 50;
  opt.damping = 0.7;
  std::vector<std::pair<std::uint64_t, real_t>> trace;
  opt.on_residual = [&trace](std::uint64_t it, real_t r) {
    trace.emplace_back(it, r);
  };
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().first, 50u);
  EXPECT_EQ(trace.back().first, r.iterations);
  EXPECT_DOUBLE_EQ(trace.back().second, r.residual);
  // Residuals decrease overall (first vs last).
  EXPECT_LT(trace.back().second, trace.front().second);
}

// --- vector ops ------------------------------------------------------------------

TEST(VectorOps, Norms) {
  const std::vector<real_t> v{-3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(norm_inf(v), 3.0);
  EXPECT_DOUBLE_EQ(norm_l1(v), 6.0);
  EXPECT_NEAR(norm_l2(v), std::sqrt(14.0), 1e-14);
}

TEST(VectorOps, NormalizeL1) {
  std::vector<real_t> v{1.0, 3.0};
  normalize_l1(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  std::vector<real_t> zero{0.0, 0.0};
  normalize_l1(zero);  // no-op, no NaN
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(VectorOps, AxpyAndDot) {
  std::vector<real_t> y{1.0, 2.0};
  const std::vector<real_t> x{10.0, 20.0};
  axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(dot(x, y), 10.0 * 6.0 + 20.0 * 12.0);
}

}  // namespace
}  // namespace cmesolve::solver
