// Tests for the alternative solvers: Gauss-Seidel, uniformized power
// iteration, GMRES.
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/gmres.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/power_iteration.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::solver {
namespace {

sparse::Csr immigration_death_matrix(std::int32_t cap, real_t lambda,
                                     real_t mu) {
  core::ReactionNetwork net;
  const int x = net.add_species("X", cap);
  net.add_reaction("birth", lambda, {}, {{x, +1}});
  net.add_reaction("death", mu, {{x, 1}}, {{x, -1}});
  const core::StateSpace space(net, core::State{0}, 100000);
  return core::rate_matrix(space);
}

std::vector<real_t> truncated_poisson(std::int32_t cap, real_t rate) {
  std::vector<real_t> pi(static_cast<std::size_t>(cap) + 1);
  real_t term = 1.0;
  pi[0] = 1.0;
  for (std::int32_t k = 1; k <= cap; ++k) {
    term *= rate / static_cast<real_t>(k);
    pi[static_cast<std::size_t>(k)] = term;
  }
  real_t sum = 0;
  for (real_t v : pi) sum += v;
  for (real_t& v : pi) v /= sum;
  return pi;
}

// --- Gauss-Seidel -----------------------------------------------------------------

TEST(GaussSeidel, MatchesExactStationary) {
  const auto a = immigration_death_matrix(25, 4.0, 1.0);
  const auto exact = truncated_poisson(25, 4.0);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 1e-12;
  const auto r = gauss_seidel_solve(a, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], exact[i], 1e-8);
  }
}

TEST(GaussSeidel, ConvergesInFewerSweepsThanJacobi) {
  const auto a = immigration_death_matrix(40, 8.0, 1.0);
  JacobiOptions opt;
  opt.eps = 1e-10;
  opt.check_every = 10;
  opt.damping = 0.8;

  std::vector<real_t> pj(static_cast<std::size_t>(a.nrows));
  fill_uniform(pj);
  CsrOperator op(a);
  const auto rj = jacobi_solve(op, a.inf_norm(), pj, opt);

  std::vector<real_t> pg(static_cast<std::size_t>(a.nrows));
  fill_uniform(pg);
  const auto rg = gauss_seidel_solve(a, a.inf_norm(), pg, opt);

  EXPECT_EQ(rg.reason, StopReason::kConverged);
  EXPECT_LT(rg.iterations, rj.iterations);
}

// --- power iteration -------------------------------------------------------------

TEST(PowerIteration, MatchesExactStationary) {
  const auto a = immigration_death_matrix(25, 4.0, 1.0);
  const auto exact = truncated_poisson(25, 4.0);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  fill_uniform(p);
  PowerIterationOptions opt;
  opt.eps = 1e-12;
  const auto r = power_iteration_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], exact[i], 1e-8);
  }
}

TEST(PowerIteration, AgreesWithJacobiOnToggleSwitch) {
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 10;
  const auto net = core::models::toggle_switch(tp);
  const core::StateSpace space(net, core::models::toggle_switch_initial(tp),
                               100000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);

  std::vector<real_t> pj(static_cast<std::size_t>(a.nrows));
  fill_uniform(pj);
  JacobiOptions jopt;
  jopt.eps = 1e-11;
  (void)jacobi_solve(op, a.inf_norm(), pj, jopt);

  std::vector<real_t> pp(static_cast<std::size_t>(a.nrows));
  fill_uniform(pp);
  PowerIterationOptions popt;
  popt.eps = 1e-11;
  (void)power_iteration_solve(op, a.inf_norm(), pp, popt);

  for (std::size_t i = 0; i < pj.size(); ++i) {
    EXPECT_NEAR(pj[i], pp[i], 1e-7);
  }
}

// --- GMRES -----------------------------------------------------------------------

TEST(Gmres, SolvesDiagonallyDominantSystem) {
  // Well-conditioned system: GMRES must nail it quickly.
  const index_t n = 50;
  sparse::Coo c;
  c.nrows = c.ncols = n;
  for (index_t i = 0; i < n; ++i) {
    c.add(i, i, 10.0 + i);
    if (i > 0) c.add(i, i - 1, 1.0);
    if (i < n - 1) c.add(i, i + 1, 2.0);
  }
  const auto a = sparse::csr_from_coo(std::move(c));

  std::vector<real_t> x_true(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) x_true[i] = std::sin(0.1 * i);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  sparse::spmv(a, x_true, b);

  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
  const LinearOp op = [&a](std::span<const real_t> in, std::span<real_t> out) {
    sparse::spmv(a, in, out);
  };
  const auto r = gmres_solve(op, n, b, x, {});
  EXPECT_TRUE(r.converged);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Gmres, RestartPathExercised) {
  const index_t n = 80;
  sparse::Coo c;
  c.nrows = c.ncols = n;
  for (index_t i = 0; i < n; ++i) {
    c.add(i, i, 4.0);
    if (i > 0) c.add(i, i - 1, -1.0);
    if (i < n - 1) c.add(i, i + 1, -1.0);
  }
  const auto a = sparse::csr_from_coo(std::move(c));
  std::vector<real_t> b(static_cast<std::size_t>(n), 1.0);
  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
  const LinearOp op = [&a](std::span<const real_t> in, std::span<real_t> out) {
    sparse::spmv(a, in, out);
  };
  GmresOptions opt;
  opt.restart = 5;  // force several restarts
  opt.max_iterations = 500;
  const auto r = gmres_solve(op, n, b, x, opt);
  EXPECT_TRUE(r.converged);
  std::vector<real_t> check(static_cast<std::size_t>(n));
  sparse::spmv(a, x, check);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(check[i], 1.0, 1e-6);
}

TEST(Gmres, ZeroRhsReturnsZero) {
  const LinearOp op = [](std::span<const real_t> in, std::span<real_t> out) {
    std::copy(in.begin(), in.end(), out.begin());
  };
  std::vector<real_t> b(10, 0.0);
  std::vector<real_t> x(10, 3.0);
  const auto r = gmres_solve(op, 10, b, x, {});
  EXPECT_TRUE(r.converged);
  for (real_t v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Gmres, SteadyStateOperatorSolvesSmallChain) {
  // On a small, benign chain the constraint-row formulation is solvable;
  // the result must match the known stationary distribution.
  const auto a = immigration_death_matrix(10, 2.0, 1.0);
  const auto exact = truncated_poisson(10, 2.0);
  const auto op = steady_state_operator(a, a.nrows - 1);
  const auto b = steady_state_rhs(a.nrows, a.nrows - 1);
  std::vector<real_t> x(static_cast<std::size_t>(a.nrows), 0.0);
  GmresOptions opt;
  opt.max_iterations = 500;
  const auto r = gmres_solve(op, a.nrows, b, x, opt);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], exact[i], 1e-6);
  }
}

TEST(Gmres, ResidualHistoryMonotoneWithinCycle) {
  const auto a = immigration_death_matrix(20, 3.0, 1.0);
  const auto op = steady_state_operator(a, a.nrows - 1);
  const auto b = steady_state_rhs(a.nrows, a.nrows - 1);
  std::vector<real_t> x(static_cast<std::size_t>(a.nrows), 0.0);
  GmresOptions opt;
  opt.restart = 30;
  opt.max_iterations = 30;
  const auto r = gmres_solve(op, a.nrows, b, x, opt);
  for (std::size_t i = 1; i < r.residual_history.size(); ++i) {
    EXPECT_LE(r.residual_history[i], r.residual_history[i - 1] + 1e-15);
  }
}

}  // namespace
}  // namespace cmesolve::solver
