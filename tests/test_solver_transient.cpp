// Tests for the transient CME engines: uniformization (two-sided Poisson
// window, interval splitting, checkpoint grids) and the Krylov expm(tA)v
// propagator, plus their FSP front end and flight-recorder wiring.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "fsp/fsp.hpp"
#include "obs/flight_recorder.hpp"
#include "solver/jacobi.hpp"
#include "solver/krylov_expm.hpp"
#include "solver/operators.hpp"
#include "solver/transient.hpp"
#include "solver/vector_ops.hpp"
#include "verify/scenario.hpp"

namespace cmesolve::solver {
namespace {

sparse::Csr two_state(real_t up, real_t down) {
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, -up);
  c.add(1, 0, up);
  c.add(0, 1, down);
  c.add(1, 1, -down);
  return sparse::csr_from_coo(std::move(c));
}

/// Closed-form column-0 of exp(At) for the two-state chain: relaxation to
/// pi at rate (up + down).
void two_state_reference(real_t up, real_t down, real_t t, real_t& p0,
                         real_t& p1) {
  const real_t pi0 = down / (up + down);
  const real_t decay = std::exp(-(up + down) * t);
  p0 = pi0 + (1.0 - pi0) * decay;
  p1 = 1.0 - p0;
}

real_t l1_diff(std::span<const real_t> a, std::span<const real_t> b) {
  real_t sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

/// Immigration-death fixture: birth at `lambda`, unit death, buffer 40 —
/// big enough that the truncation never matters at the horizons used here.
struct ImmigrationDeath {
  core::ReactionNetwork net;
  explicit ImmigrationDeath(real_t lambda = 4.0) {
    const int x = net.add_species("X", 40);
    net.add_reaction("birth", lambda, {}, {{x, +1}});
    net.add_reaction("death", 1.0, {{x, 1}}, {{x, -1}});
  }
};

TEST(Transient, TwoStateAnalyticSolution) {
  // p1(t) = pi1 + (p1(0) - pi1) e^{-(a+b) t}.
  const real_t up = 2.0;
  const real_t down = 3.0;
  const auto a = two_state(up, down);
  CsrOperator op(a);

  for (const real_t t : {0.0, 0.1, 0.5, 1.0, 3.0}) {
    std::vector<real_t> p{1.0, 0.0};
    const auto r = transient_solve(op, t, p);
    EXPECT_FALSE(r.truncated_early);
    real_t e0 = 0.0;
    real_t e1 = 0.0;
    two_state_reference(up, down, t, e0, e1);
    EXPECT_NEAR(p[0], e0, 1e-10) << "t=" << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  }
}

TEST(Transient, TimeZeroIsIdentity) {
  const auto a = two_state(1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{0.3, 0.7};
  const auto r = transient_solve(op, 0.0, p);
  EXPECT_EQ(r.matvecs, 0u);
  EXPECT_DOUBLE_EQ(p[0], 0.3);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
}

TEST(Transient, NegativeTimeRejected) {
  const auto a = two_state(1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{0.5, 0.5};
  EXPECT_THROW((void)transient_solve(op, -1.0, p), std::invalid_argument);
}

// Degenerate options must be rejected up front (std::invalid_argument, no
// partial progress): eps == 0 could never satisfy `mass >= 1 - eps` through
// rounding, and lambda_margin < 1 makes B = I + A/lambda non-stochastic.
TEST(Transient, OptionValidationThrowsCleanly) {
  const auto a = two_state(1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};

  TransientOptions opt;
  opt.eps = 0.0;
  EXPECT_THROW((void)transient_solve(op, 1.0, p, opt), std::invalid_argument);
  opt.eps = -1e-6;
  EXPECT_THROW((void)transient_solve(op, 1.0, p, opt), std::invalid_argument);
  opt.eps = 1.0;
  EXPECT_THROW((void)transient_solve(op, 1.0, p, opt), std::invalid_argument);

  opt = TransientOptions{};
  opt.lambda_margin = 0.99;
  EXPECT_THROW((void)transient_solve(op, 1.0, p, opt), std::invalid_argument);

  opt = TransientOptions{};
  opt.max_step_mean = 0.0;
  EXPECT_THROW((void)transient_solve(op, 1.0, p, opt), std::invalid_argument);

  // Validation happens before any propagation: p is untouched.
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

// The explicit mass ledger: for a completed single-step solve the covered
// Poisson window plus both computed tails is the whole series, and the raw
// (unrenormalized) vector matches the closed-form exp(At) column.
TEST(Transient, MassAccountingClosesToOneOnTwoStateChain) {
  const real_t up = 2.0;
  const real_t down = 1.0;
  const auto a = two_state(up, down);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  TransientOptions opt;
  opt.renormalize = false;  // keep the raw window mass visible in p
  const real_t t = 0.7;
  const auto r = transient_solve(op, t, p, opt);

  EXPECT_FALSE(r.truncated_early);
  EXPECT_EQ(r.steps, 1u);
  EXPECT_GT(r.covered_mass, 0.999);
  EXPECT_NEAR(r.covered_mass + r.truncated_mass, 1.0, 1e-15);

  real_t e0 = 0.0;
  real_t e1 = 0.0;
  two_state_reference(up, down, t, e0, e1);
  EXPECT_NEAR(p[0], e0, 1e-11);
  EXPECT_NEAR(p[1], e1, 1e-11);
}

// Large Poisson mean: the left tail must actually be trimmed (no axpy for
// the head terms) without costing accuracy.
TEST(Transient, LeftTailTrimSkipsHeadTerms) {
  const auto a = two_state(50.0, 50.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  const auto r = transient_solve(op, 10.0, p);  // mean = 1.01 * 100 * 10
  EXPECT_EQ(r.steps, 1u);
  EXPECT_FALSE(r.truncated_early);
  EXPECT_GT(r.left_skipped, 0u);
  EXPECT_NEAR(p[0], 0.5, 1e-10);  // fully relaxed by t = 10
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(Transient, IntervalSplittingMatchesSingleStep) {
  ImmigrationDeath model;
  const core::StateSpace space(model.net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);
  const std::size_t n = static_cast<std::size_t>(a.nrows);

  std::vector<real_t> single(n, 0.0);
  single[0] = 1.0;
  const auto rs = transient_solve(op, 2.0, single);
  EXPECT_EQ(rs.steps, 1u);

  std::vector<real_t> split(n, 0.0);
  split[0] = 1.0;
  TransientOptions opt;
  opt.max_step_mean = 8.0;  // force many sub-steps for the same horizon
  const auto rm = transient_solve(op, 2.0, split, opt);
  EXPECT_GT(rm.steps, 1u);
  EXPECT_FALSE(rm.truncated_early);
  EXPECT_LE(l1_diff(single, split), 1e-10);
}

TEST(Transient, GridCheckpointsMatchIndividualSolves) {
  ImmigrationDeath model;
  const core::StateSpace space(model.net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);
  const std::size_t n = static_cast<std::size_t>(a.nrows);

  const std::vector<real_t> grid{0.25, 1.0, 2.5};
  std::vector<std::vector<real_t>> checkpoints(grid.size());
  std::vector<real_t> p(n, 0.0);
  p[0] = 1.0;
  const auto r = transient_solve_grid(
      op, grid, p,
      [&](std::size_t i, std::span<const real_t> pi) {
        checkpoints[i].assign(pi.begin(), pi.end());
      },
      {});
  EXPECT_FALSE(r.truncated_early);
  ASSERT_EQ(checkpoints.back().size(), n);
  // The in-place vector ends at the last grid point.
  EXPECT_LE(l1_diff(p, checkpoints.back()), 0.0);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::vector<real_t> direct(n, 0.0);
    direct[0] = 1.0;
    (void)transient_solve(op, grid[i], direct);
    EXPECT_LE(l1_diff(checkpoints[i], direct), 1e-10) << "t=" << grid[i];
  }
}

TEST(Transient, GridMustBeAscending) {
  const auto a = two_state(1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  const std::vector<real_t> bad{1.0, 0.5};
  EXPECT_THROW(
      (void)transient_solve_grid(op, bad, p, [](std::size_t,
                                                std::span<const real_t>) {}),
      std::invalid_argument);
}

TEST(Transient, ImmigrationDeathMeanMatchesOde) {
  // d E[X]/dt = lambda - mu E[X]  =>  E[X](t) = (lambda/mu)(1 - e^{-mu t})
  // starting from X = 0 (buffer large enough that truncation is invisible).
  const real_t lambda = 4.0;
  ImmigrationDeath model(lambda);
  const core::StateSpace space(model.net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);

  for (const real_t t : {0.25, 1.0, 2.5}) {
    std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
    p[0] = 1.0;  // start empty
    (void)transient_solve(op, t, p);
    real_t mean = 0.0;
    for (index_t i = 0; i < a.nrows; ++i) mean += p[i] * i;
    const real_t expect = lambda * (1.0 - std::exp(-t));
    EXPECT_NEAR(mean, expect, 1e-6) << "t=" << t;
  }
}

TEST(Transient, LongHorizonReachesSteadyState) {
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 8;
  const auto net = core::models::toggle_switch(tp);
  const core::StateSpace space(net, core::models::toggle_switch_initial(tp),
                               100000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);

  std::vector<real_t> steady(static_cast<std::size_t>(a.nrows));
  fill_uniform(steady);
  JacobiOptions jopt;
  jopt.eps = 1e-11;
  (void)jacobi_solve(op, a.inf_norm(), steady, jopt);

  std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
  p[0] = 1.0;
  (void)transient_solve(op, 200.0, p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], steady[i], 1e-6);
  }
}

// t -> inf in L1: on the immigration-death chain the spectral gap is
// exactly mu = 1, so by t = 40 the transient term is e^-40 and both engines
// must land on the stationary Jacobi solve to solver precision.
TEST(Transient, StationaryLimitMatchesJacobiInL1) {
  ImmigrationDeath model;
  const core::StateSpace space(model.net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);
  const std::size_t n = static_cast<std::size_t>(a.nrows);

  std::vector<real_t> steady(n);
  fill_uniform(steady);
  JacobiOptions jopt;
  jopt.eps = 1e-11;
  jopt.damping = 0.9;  // plain Jacobi oscillates on the bipartite-ish chain
  const auto jr = jacobi_solve(op, a.inf_norm(), steady, jopt);
  ASSERT_EQ(jr.reason, StopReason::kConverged);

  std::vector<real_t> pu(n, 0.0);
  pu[0] = 1.0;
  (void)transient_solve(op, 40.0, pu);
  EXPECT_LE(l1_diff(pu, steady), 1e-8);

  std::vector<real_t> pk(n, 0.0);
  pk[0] = 1.0;
  KrylovExpmOptions kopt;
  kopt.tol = 1e-13;
  (void)krylov_expm_solve(op, 40.0, pk, kopt);
  EXPECT_LE(l1_diff(pk, steady), 1e-8);
}

TEST(Transient, ProbabilityVectorInvariantAtAllTimes) {
  core::models::BrusselatorParams bp;
  bp.cap_x = 15;
  bp.cap_y = 8;
  const auto net = core::models::brusselator(bp);
  const core::StateSpace space(net, core::models::brusselator_initial(bp),
                               100000);
  const auto a = core::rate_matrix(space);
  CsrDiaOperator op(a);

  std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
  p[0] = 1.0;
  for (const real_t dt : {0.01, 0.1, 1.0}) {
    (void)transient_solve(op, dt, p);  // chained propagation
    real_t sum = 0.0;
    real_t minimum = 1.0;
    for (real_t v : p) {
      sum += v;
      minimum = std::min(minimum, v);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GE(minimum, -1e-15);
  }
}

TEST(Transient, SemigroupProperty) {
  // Propagating by t then s equals propagating by t + s.
  const auto a = two_state(1.3, 0.7);
  CsrOperator op(a);
  std::vector<real_t> p1{1.0, 0.0};
  (void)transient_solve(op, 0.4, p1);
  (void)transient_solve(op, 0.6, p1);
  std::vector<real_t> p2{1.0, 0.0};
  (void)transient_solve(op, 1.0, p2);
  EXPECT_NEAR(p1[0], p2[0], 1e-10);
  EXPECT_NEAR(p1[1], p2[1], 1e-10);
}

TEST(Transient, SeriesLengthGrowsWithHorizon) {
  const auto a = two_state(5.0, 5.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  const auto short_run = transient_solve(op, 0.1, p);
  p = {1.0, 0.0};
  const auto long_run = transient_solve(op, 10.0, p);
  EXPECT_GT(long_run.matvecs, short_run.matvecs);
}

TEST(Transient, MaxTermsCapRespected) {
  const auto a = two_state(100.0, 100.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  TransientOptions opt;
  opt.max_terms = 5;  // far too few for lambda*t ~ 2000
  const auto r = transient_solve(op, 10.0, p, opt);
  EXPECT_TRUE(r.truncated_early);
  EXPECT_LE(r.matvecs, 5u);
}

// A budget-cut grid walk must not hand the caller checkpoints it never
// computed: the segment that hit max_terms leaves p mid-series (or as the
// untouched initial vector), so its checkpoint — and every later one — is
// withheld rather than delivered with stale content.
TEST(Transient, GridWithholdsCheckpointsAfterTruncation) {
  const auto a = two_state(100.0, 100.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  TransientOptions opt;
  opt.max_terms = 5;  // cut inside the first segment
  const std::vector<real_t> grid{1.0, 2.0, 10.0};
  std::size_t delivered = 0;
  const auto r = transient_solve_grid(
      op, grid, p,
      [&](std::size_t, std::span<const real_t>) { ++delivered; }, opt);
  EXPECT_TRUE(r.truncated_early);
  EXPECT_EQ(delivered, 0u);
}

// --- Krylov expm ------------------------------------------------------------

TEST(KrylovExpm, TwoStateAnalyticSolution) {
  const real_t up = 2.0;
  const real_t down = 3.0;
  const auto a = two_state(up, down);
  CsrOperator op(a);
  for (const real_t t : {0.0, 0.1, 0.5, 1.0, 3.0}) {
    std::vector<real_t> p{1.0, 0.0};
    const auto r = krylov_expm_solve(op, t, p);
    EXPECT_FALSE(r.truncated_early);
    real_t e0 = 0.0;
    real_t e1 = 0.0;
    two_state_reference(up, down, t, e0, e1);
    EXPECT_NEAR(p[0], e0, 1e-10) << "t=" << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  }
}

TEST(KrylovExpm, ValidationThrowsCleanly) {
  const auto a = two_state(1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  EXPECT_THROW((void)krylov_expm_solve(op, -1.0, p), std::invalid_argument);
  KrylovExpmOptions opt;
  opt.krylov_dim = 0;
  EXPECT_THROW((void)krylov_expm_solve(op, 1.0, p, opt),
               std::invalid_argument);
  opt = KrylovExpmOptions{};
  opt.tol = 0.0;
  EXPECT_THROW((void)krylov_expm_solve(op, 1.0, p, opt),
               std::invalid_argument);
}

// n < krylov_dim: the Arnoldi basis spans the whole space, the recursion
// hits an invariant subspace and the single step is exact (no sub-stepping,
// zero error estimate).
TEST(KrylovExpm, HappyBreakdownExactOnTinyChain) {
  const real_t up = 1.3;
  const real_t down = 0.7;
  const auto a = two_state(up, down);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  const auto r = krylov_expm_solve(op, 5.0, p);
  EXPECT_TRUE(r.happy_breakdown);
  EXPECT_EQ(r.steps, 1u);
  EXPECT_EQ(r.rejections, 0u);
  EXPECT_DOUBLE_EQ(r.error_estimate, 0.0);
  real_t e0 = 0.0;
  real_t e1 = 0.0;
  two_state_reference(up, down, 5.0, e0, e1);
  EXPECT_NEAR(p[0], e0, 1e-12);
  EXPECT_NEAR(p[1], e1, 1e-12);
}

TEST(KrylovExpm, SemigroupProperty) {
  ImmigrationDeath model;
  const core::StateSpace space(model.net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);
  const std::size_t n = static_cast<std::size_t>(a.nrows);
  KrylovExpmOptions opt;
  opt.tol = 1e-13;

  std::vector<real_t> chained(n, 0.0);
  chained[0] = 1.0;
  (void)krylov_expm_solve(op, 0.8, chained, opt);
  (void)krylov_expm_solve(op, 1.2, chained, opt);
  std::vector<real_t> direct(n, 0.0);
  direct[0] = 1.0;
  (void)krylov_expm_solve(op, 2.0, direct, opt);
  EXPECT_LE(l1_diff(chained, direct), 1e-10);
}

// The core property-suite gate: both transient engines agree in L1 to
// 1e-10 across the fuzzer's adversarial scenario families.
TEST(KrylovExpm, MatchesUniformizationOnScenarioFamilies) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto sc = verify::random_scenario(seed);
    const auto net = verify::build_network(sc);
    const core::StateSpace space(net, sc.initial, sc.max_states);
    const auto a = core::rate_matrix(space);
    if (a.nrows < 2 || a.nrows > 400) continue;
    CsrOperator op(a);
    real_t dmax = 0.0;
    for (const real_t d : op.diag()) dmax = std::max(dmax, std::abs(d));
    if (dmax <= 0.0) continue;
    const std::size_t n = static_cast<std::size_t>(a.nrows);
    const index_t root = space.find(sc.initial);
    ASSERT_GE(root, 0);
    // Two horizons per scenario, scaled to the fastest rate so lambda*t is
    // bounded regardless of the family's rate spread.
    for (const real_t c : {0.5, 4.0}) {
      const real_t t = c / dmax;
      std::vector<real_t> pu(n, 0.0);
      pu[static_cast<std::size_t>(root)] = 1.0;
      const auto ru = transient_solve(op, t, pu);
      ASSERT_FALSE(ru.truncated_early) << sc.name;

      std::vector<real_t> pk(n, 0.0);
      pk[static_cast<std::size_t>(root)] = 1.0;
      KrylovExpmOptions kopt;
      kopt.tol = 1e-13;
      const auto rk = krylov_expm_solve(op, t, pk, kopt);
      ASSERT_FALSE(rk.truncated_early) << sc.name;

      EXPECT_LE(l1_diff(pu, pk), 1e-10) << sc.name << " t=" << t;
      ++compared;
    }
  }
  EXPECT_GE(compared, 4u);  // the seed range must exercise real scenarios
}

// Flag semantics: a matvec-budget cut reports truncated_early (horizon
// incomplete, p == P(t_done) for t_done < t) WITHOUT tol_not_met — the
// steps that did run all met their local budgets.
TEST(KrylovExpm, MatvecBudgetSetsTruncatedEarlyOnly) {
  ImmigrationDeath model;
  const core::StateSpace space(model.net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
  p[0] = 1.0;
  KrylovExpmOptions opt;
  opt.max_matvecs = 10;  // less than one full Arnoldi sweep
  const auto r = krylov_expm_solve(op, 50.0, p, opt);
  EXPECT_TRUE(r.truncated_early);
  EXPECT_FALSE(r.tol_not_met);
}

// --- dense expm -------------------------------------------------------------

// Scaling regression: for inf-norm in (0.5, 1] the argument must still be
// halved at least once, or the raw Pade(6,6) error (~1.5e-13 at 0.99)
// exceeds the 1e-13 the transient oracle asks of the propagator.
TEST(DenseExpm, ScalesNormBetweenHalfAndOne) {
  const std::vector<real_t> m{0.99};
  std::vector<real_t> out(1, 0.0);
  dense_expm(m, 1, out);
  EXPECT_NEAR(out[0], std::exp(0.99), 1e-14);
}

TEST(DenseExpm, NilpotentAndDiagonalCases) {
  // Nilpotent: exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
  const std::vector<real_t> nilpotent{0.0, 1.0, 0.0, 0.0};
  std::vector<real_t> out(4, 0.0);
  dense_expm(nilpotent, 2, out);
  EXPECT_NEAR(out[0], 1.0, 1e-14);
  EXPECT_NEAR(out[1], 1.0, 1e-14);
  EXPECT_NEAR(out[2], 0.0, 1e-14);
  EXPECT_NEAR(out[3], 1.0, 1e-14);

  // Diagonal: exp(diag(a, b)) = diag(e^a, e^b); norm > 0.5 exercises the
  // scaling-and-squaring branch.
  const std::vector<real_t> diag{2.0, 0.0, 0.0, -3.0};
  dense_expm(diag, 2, out);
  EXPECT_NEAR(out[0], std::exp(2.0), 1e-12 * std::exp(2.0));
  EXPECT_NEAR(out[1], 0.0, 1e-14);
  EXPECT_NEAR(out[2], 0.0, 1e-14);
  EXPECT_NEAR(out[3], std::exp(-3.0), 1e-14);
}

TEST(DenseExpm, MatchesTwoStateGenerator) {
  const real_t up = 2.0;
  const real_t down = 1.0;
  const real_t t = 1.7;
  // Row-major t * A for the two-state chain.
  const std::vector<real_t> m{-up * t, down * t, up * t, -down * t};
  std::vector<real_t> out(4, 0.0);
  dense_expm(m, 2, out);
  real_t e0 = 0.0;
  real_t e1 = 0.0;
  two_state_reference(up, down, t, e0, e1);
  EXPECT_NEAR(out[0], e0, 1e-13);  // column 0 = exp(tA) e_0
  EXPECT_NEAR(out[2], e1, 1e-13);
  // Columns of exp(tA) sum to one (generator columns sum to zero).
  EXPECT_NEAR(out[0] + out[2], 1.0, 1e-13);
  EXPECT_NEAR(out[1] + out[3], 1.0, 1e-13);
}

// --- flight recorder --------------------------------------------------------

TEST(TransientFlight, StepAndStopEventsRecorded) {
  auto& rec = obs::FlightRecorder::instance();
  rec.enable();
  const auto a = two_state(3.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  TransientOptions opt;
  opt.max_step_mean = 2.0;  // force multiple sub-steps -> multiple events
  (void)transient_solve(op, 4.0, p, opt);
  std::vector<real_t> pk{1.0, 0.0};
  (void)krylov_expm_solve(op, 4.0, pk);

  std::size_t transient_steps = 0;
  std::size_t krylov_steps = 0;
  std::size_t transient_stops = 0;
  std::size_t krylov_stops = 0;
  for (const auto& e : rec.events()) {
    if (e.kind == obs::FlightKind::kTransientStep) ++transient_steps;
    if (e.kind == obs::FlightKind::kKrylovStep) ++krylov_steps;
    if (e.kind == obs::FlightKind::kStop) {
      if (std::strcmp(e.track, "transient.stop") == 0) ++transient_stops;
      if (std::strcmp(e.track, "krylov.stop") == 0) ++krylov_stops;
    }
  }
  rec.disable();
  EXPECT_GT(transient_steps, 1u);
  EXPECT_GE(krylov_steps, 1u);
  EXPECT_EQ(transient_stops, 1u);
  EXPECT_EQ(krylov_stops, 1u);
}

// --- FSP transient front end ------------------------------------------------

TEST(FspTransient, ConvergesAndMatchesFullSpaceReference) {
  ImmigrationDeath model;
  const std::vector<real_t> grid{0.5, 1.5};

  fsp::TransientFspOptions fopt;
  fopt.tol = 1e-8;
  fopt.seed_states = 4;  // force the expansion loop to do real work
  const auto res = fsp::solve_transient(model.net, core::State{0}, grid, fopt);

  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.error_bound, 1e-8);
  ASSERT_EQ(res.marginals.size(), grid.size());
  ASSERT_EQ(res.sink_mass.size(), grid.size());
  EXPECT_GE(res.rounds.size(), 1u);
  // Sink mass is monotone in t on the final truncation (mass only leaks).
  EXPECT_LE(res.sink_mass[0], res.sink_mass[1] + 1e-15);

  // Full-buffer reference at the final grid point.
  const core::StateSpace full(model.net, core::State{0}, 1000);
  const auto a = core::rate_matrix(full);
  CsrOperator op(a);
  std::vector<real_t> p_ref(static_cast<std::size_t>(a.nrows), 0.0);
  p_ref[static_cast<std::size_t>(full.find(core::State{0}))] = 1.0;
  (void)transient_solve(op, grid.back(), p_ref);

  // Member-by-member diff; reference mass on states the FSP never added
  // counts in full (it is bounded by the sink mass).
  std::vector<char> seen(p_ref.size(), 0);
  real_t l1 = 0.0;
  for (index_t i = 0; i < res.space.size(); ++i) {
    const index_t j = full.find(res.space.state(i));
    ASSERT_GE(j, 0);
    seen[static_cast<std::size_t>(j)] = 1;
    l1 += std::abs(res.marginals.back()[static_cast<std::size_t>(i)] -
                   p_ref[static_cast<std::size_t>(j)]);
  }
  for (std::size_t j = 0; j < p_ref.size(); ++j) {
    if (!seen[j]) l1 += p_ref[j];
  }
  EXPECT_LE(l1, 1e-7);
}

TEST(FspTransient, KrylovEngineMatchesUniformization) {
  ImmigrationDeath model;
  const std::vector<real_t> grid{0.5, 1.5};

  fsp::TransientFspOptions uopt;
  uopt.seed_states = 4;
  const auto ru = fsp::solve_transient(model.net, core::State{0}, grid, uopt);

  fsp::TransientFspOptions kopt;
  kopt.seed_states = 4;
  kopt.engine = fsp::TransientEngine::kKrylov;
  kopt.krylov.tol = 1e-13;
  const auto rk = fsp::solve_transient(model.net, core::State{0}, grid, kopt);

  EXPECT_TRUE(ru.converged);
  EXPECT_TRUE(rk.converged);
  ASSERT_EQ(ru.space.size(), rk.space.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    EXPECT_LE(l1_diff(ru.marginals[g], rk.marginals[g]), 1e-8) << "g=" << g;
  }
}

// The FSP transient bound is a safety guarantee: when an engine budget cuts
// the propagation before the last grid point, no bound exists. The result
// must say so — truncated_early set, infinite error_bound, never-computed
// grid points poisoned (empty marginal, infinite sink) — instead of letting
// the sinks[] zero-initialization masquerade as a converged solve.
TEST(FspTransient, TruncatedUniformizationReportsNoBound) {
  ImmigrationDeath model;
  const std::vector<real_t> grid{0.5, 1.5};
  fsp::TransientFspOptions fopt;
  fopt.uniformization.max_terms = 3;  // cut inside the first segment
  const auto res = fsp::solve_transient(model.net, core::State{0}, grid, fopt);
  EXPECT_TRUE(res.truncated_early);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(std::isinf(res.error_bound));
  ASSERT_EQ(res.marginals.size(), grid.size());
  ASSERT_EQ(res.sink_mass.size(), grid.size());
  EXPECT_TRUE(res.marginals.back().empty());
  EXPECT_TRUE(std::isinf(res.sink_mass.back()));
}

TEST(FspTransient, TruncatedKrylovReportsNoBound) {
  ImmigrationDeath model;
  const std::vector<real_t> grid{0.5, 1.5};
  fsp::TransientFspOptions fopt;
  fopt.engine = fsp::TransientEngine::kKrylov;
  fopt.krylov.max_matvecs = 5;  // less than one Arnoldi sweep
  const auto res = fsp::solve_transient(model.net, core::State{0}, grid, fopt);
  EXPECT_TRUE(res.truncated_early);
  EXPECT_FALSE(res.converged);
  EXPECT_TRUE(std::isinf(res.error_bound));
  EXPECT_TRUE(res.marginals.back().empty());
  EXPECT_TRUE(std::isinf(res.sink_mass.back()));
}

TEST(FspTransient, RejectsBadGridAndRoundBudget) {
  ImmigrationDeath model;
  fsp::TransientFspOptions fopt;
  fopt.max_rounds = 0;
  const std::vector<real_t> grid{1.0};
  EXPECT_THROW((void)fsp::solve_transient(model.net, core::State{0}, grid,
                                          fopt),
               std::invalid_argument);
  fopt = fsp::TransientFspOptions{};
  const std::vector<real_t> bad{1.0, 0.5};
  EXPECT_THROW((void)fsp::solve_transient(model.net, core::State{0}, bad,
                                          fopt),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmesolve::solver
