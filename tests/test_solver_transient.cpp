// Tests for the uniformization-based transient solver (the paper's
// future-work extension).
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/transient.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::solver {
namespace {

sparse::Csr two_state(real_t up, real_t down) {
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, -up);
  c.add(1, 0, up);
  c.add(0, 1, down);
  c.add(1, 1, -down);
  return sparse::csr_from_coo(std::move(c));
}

TEST(Transient, TwoStateAnalyticSolution) {
  // p1(t) = pi1 + (p1(0) - pi1) e^{-(a+b) t}.
  const real_t up = 2.0;
  const real_t down = 3.0;
  const auto a = two_state(up, down);
  CsrOperator op(a);
  const real_t pi0 = down / (up + down);

  for (const real_t t : {0.0, 0.1, 0.5, 1.0, 3.0}) {
    std::vector<real_t> p{1.0, 0.0};
    const auto r = transient_solve(op, t, p);
    EXPECT_FALSE(r.truncated_early);
    const real_t expect0 = pi0 + (1.0 - pi0) * std::exp(-(up + down) * t);
    EXPECT_NEAR(p[0], expect0, 1e-10) << "t=" << t;
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  }
}

TEST(Transient, TimeZeroIsIdentity) {
  const auto a = two_state(1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{0.3, 0.7};
  const auto r = transient_solve(op, 0.0, p);
  EXPECT_EQ(r.matvecs, 0u);
  EXPECT_DOUBLE_EQ(p[0], 0.3);
  EXPECT_DOUBLE_EQ(p[1], 0.7);
}

TEST(Transient, NegativeTimeRejected) {
  const auto a = two_state(1.0, 1.0);
  CsrOperator op(a);
  std::vector<real_t> p{0.5, 0.5};
  EXPECT_THROW((void)transient_solve(op, -1.0, p), std::invalid_argument);
}

TEST(Transient, ImmigrationDeathMeanMatchesOde) {
  // d E[X]/dt = lambda - mu E[X]  =>  E[X](t) = (lambda/mu)(1 - e^{-mu t})
  // starting from X = 0 (buffer large enough that truncation is invisible).
  const real_t lambda = 4.0;
  const real_t mu = 1.0;
  core::ReactionNetwork net;
  const int x = net.add_species("X", 40);
  net.add_reaction("birth", lambda, {}, {{x, +1}});
  net.add_reaction("death", mu, {{x, 1}}, {{x, -1}});
  const core::StateSpace space(net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);

  for (const real_t t : {0.25, 1.0, 2.5}) {
    std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
    p[0] = 1.0;  // start empty
    (void)transient_solve(op, t, p);
    real_t mean = 0.0;
    for (index_t i = 0; i < a.nrows; ++i) mean += p[i] * i;
    const real_t expect = lambda / mu * (1.0 - std::exp(-mu * t));
    EXPECT_NEAR(mean, expect, 1e-6) << "t=" << t;
  }
}

TEST(Transient, LongHorizonReachesSteadyState) {
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 8;
  const auto net = core::models::toggle_switch(tp);
  const core::StateSpace space(net, core::models::toggle_switch_initial(tp),
                               100000);
  const auto a = core::rate_matrix(space);
  CsrOperator op(a);

  std::vector<real_t> steady(static_cast<std::size_t>(a.nrows));
  fill_uniform(steady);
  JacobiOptions jopt;
  jopt.eps = 1e-11;
  (void)jacobi_solve(op, a.inf_norm(), steady, jopt);

  std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
  p[0] = 1.0;
  (void)transient_solve(op, 200.0, p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(p[i], steady[i], 1e-6);
  }
}

TEST(Transient, ProbabilityVectorInvariantAtAllTimes) {
  core::models::BrusselatorParams bp;
  bp.cap_x = 15;
  bp.cap_y = 8;
  const auto net = core::models::brusselator(bp);
  const core::StateSpace space(net, core::models::brusselator_initial(bp),
                               100000);
  const auto a = core::rate_matrix(space);
  CsrDiaOperator op(a);

  std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
  p[0] = 1.0;
  for (const real_t dt : {0.01, 0.1, 1.0}) {
    (void)transient_solve(op, dt, p);  // chained propagation
    real_t sum = 0.0;
    real_t minimum = 1.0;
    for (real_t v : p) {
      sum += v;
      minimum = std::min(minimum, v);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_GE(minimum, -1e-15);
  }
}

TEST(Transient, SemigroupProperty) {
  // Propagating by t then s equals propagating by t + s.
  const auto a = two_state(1.3, 0.7);
  CsrOperator op(a);
  std::vector<real_t> p1{1.0, 0.0};
  (void)transient_solve(op, 0.4, p1);
  (void)transient_solve(op, 0.6, p1);
  std::vector<real_t> p2{1.0, 0.0};
  (void)transient_solve(op, 1.0, p2);
  EXPECT_NEAR(p1[0], p2[0], 1e-10);
  EXPECT_NEAR(p1[1], p2[1], 1e-10);
}

TEST(Transient, SeriesLengthGrowsWithHorizon) {
  const auto a = two_state(5.0, 5.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  const auto short_run = transient_solve(op, 0.1, p);
  p = {1.0, 0.0};
  const auto long_run = transient_solve(op, 10.0, p);
  EXPECT_GT(long_run.matvecs, short_run.matvecs);
}

TEST(Transient, MaxTermsCapRespected) {
  const auto a = two_state(100.0, 100.0);
  CsrOperator op(a);
  std::vector<real_t> p{1.0, 0.0};
  TransientOptions opt;
  opt.max_terms = 5;  // far too few for lambda*t ~ 2000
  const auto r = transient_solve(op, 10.0, p, opt);
  EXPECT_TRUE(r.truncated_early);
  EXPECT_LE(r.matvecs, 5u);
  // Renormalization keeps the output a probability vector regardless.
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace cmesolve::solver
