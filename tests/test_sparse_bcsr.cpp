// Unit tests for the BCSR register-blocked format.
#include <gtest/gtest.h>

#include "gpusim/kernels.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/dense.hpp"
#include "util/rng.hpp"

namespace cmesolve::sparse {
namespace {

Csr random_matrix(index_t n, index_t max_row, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo c;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    const auto len = 1 + rng.bounded(static_cast<std::uint64_t>(max_row));
    for (std::uint64_t j = 0; j < len; ++j) {
      c.add(r, static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n))),
            rng.uniform(-1, 1));
    }
  }
  return csr_from_coo(std::move(c));
}

TEST(Bcsr, DenseBlocksHavePerfectEfficiency) {
  // Block-diagonal matrix of dense 2x2 blocks.
  Coo c;
  c.nrows = c.ncols = 8;
  for (index_t b = 0; b < 4; ++b) {
    for (int lr = 0; lr < 2; ++lr) {
      for (int lc = 0; lc < 2; ++lc) {
        c.add(b * 2 + lr, b * 2 + lc, 1.0 + lr + lc);
      }
    }
  }
  const Bcsr m = bcsr_from_csr(csr_from_coo(std::move(c)), 2, 2);
  EXPECT_EQ(m.num_blocks(), 4u);
  EXPECT_DOUBLE_EQ(m.efficiency(), 1.0);
}

TEST(Bcsr, SingletonEntriesFillPoorly) {
  // Diagonal matrix: every 2x2 block holds one nonzero... except that the
  // two diagonal entries of a block grid cell share the block.
  Coo c;
  c.nrows = c.ncols = 16;
  for (index_t i = 0; i < 16; ++i) c.add(i, i, 1.0);
  const Bcsr m = bcsr_from_csr(csr_from_coo(std::move(c)), 2, 2);
  EXPECT_EQ(m.num_blocks(), 8u);
  EXPECT_DOUBLE_EQ(m.efficiency(), 0.5);
}

TEST(Bcsr, RoundTripThroughCsr) {
  const Csr m = random_matrix(50, 5, 3);
  for (const auto& [br, bc] : {std::pair{2, 2}, std::pair{4, 4}, std::pair{3, 2}}) {
    const Bcsr b = bcsr_from_csr(m, br, bc);
    const Csr back = csr_from_bcsr(b);
    ASSERT_EQ(back.nnz(), m.nnz()) << br << "x" << bc;
    for (index_t r = 0; r < m.nrows; ++r) {
      for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
        EXPECT_DOUBLE_EQ(back.at(r, m.col_idx[p]), m.val[p]);
      }
    }
  }
}

TEST(Bcsr, SpmvMatchesCsr) {
  for (std::uint64_t seed : {4u, 5u}) {
    const Csr m = random_matrix(101, 6, seed);  // non-multiple of block size
    const Bcsr b = bcsr_from_csr(m, 2, 2);
    Xoshiro256 rng(seed + 50);
    std::vector<real_t> x(101);
    for (auto& v : x) v = rng.uniform(-1, 1);
    std::vector<real_t> expect(101);
    std::vector<real_t> y(101);
    spmv(m, x, expect);
    spmv(b, x, y);
    for (index_t i = 0; i < 101; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
  }
}

TEST(Bcsr, GpuKernelFunctionalEquivalence) {
  const Csr m = random_matrix(300, 5, 9);
  const Bcsr b = bcsr_from_csr(m, 2, 2);
  std::vector<real_t> x(300);
  for (index_t i = 0; i < 300; ++i) x[i] = 1.0 + 0.01 * i;
  std::vector<real_t> expect(300);
  std::vector<real_t> y(300);
  spmv(m, x, expect);
  const auto stats =
      gpusim::simulate_spmv(gpusim::DeviceSpec::gtx580(), b, x, y);
  EXPECT_GT(stats.gflops, 0.0);
  for (index_t i = 0; i < 300; ++i) EXPECT_NEAR(y[i], expect[i], 1e-11);
}

TEST(Bcsr, InvalidBlockDimsThrow) {
  const Csr m = random_matrix(10, 2, 1);
  EXPECT_THROW((void)bcsr_from_csr(m, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)bcsr_from_csr(m, 2, -1), std::invalid_argument);
}

}  // namespace
}  // namespace cmesolve::sparse
