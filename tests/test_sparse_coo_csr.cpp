// Unit tests for the COO and CSR interchange formats.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "util/rng.hpp"

namespace cmesolve::sparse {
namespace {

Coo small_coo() {
  // 3x4:  [ 1 0 2 0
  //         0 3 0 0
  //         4 0 5 6 ]
  Coo c;
  c.nrows = 3;
  c.ncols = 4;
  c.add(2, 3, 6.0);
  c.add(0, 0, 1.0);
  c.add(2, 0, 4.0);
  c.add(1, 1, 3.0);
  c.add(0, 2, 2.0);
  c.add(2, 2, 5.0);
  return c;
}

TEST(Coo, SortAndCombineOrders) {
  Coo c = small_coo();
  EXPECT_FALSE(c.is_canonical());
  c.sort_and_combine();
  EXPECT_TRUE(c.is_canonical());
  EXPECT_EQ(c.nnz(), 6u);
  EXPECT_EQ(c.row.front(), 0);
  EXPECT_EQ(c.col.front(), 0);
}

TEST(Coo, DuplicatesAreSummed) {
  Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 1, 1.5);
  c.add(0, 1, 2.5);
  c.add(1, 0, 1.0);
  c.sort_and_combine();
  EXPECT_EQ(c.nnz(), 2u);
  EXPECT_DOUBLE_EQ(c.val[0], 4.0);
}

TEST(Csr, FromCooLayout) {
  const Csr m = csr_from_coo(small_coo());
  EXPECT_EQ(m.nrows, 3);
  EXPECT_EQ(m.ncols, 4);
  EXPECT_EQ(m.nnz(), 6u);
  ASSERT_EQ(m.row_ptr.size(), 4u);
  EXPECT_EQ(m.row_ptr[0], 0);
  EXPECT_EQ(m.row_ptr[1], 2);
  EXPECT_EQ(m.row_ptr[2], 3);
  EXPECT_EQ(m.row_ptr[3], 6);
  EXPECT_EQ(m.row_length(0), 2);
  EXPECT_EQ(m.row_length(1), 1);
  EXPECT_EQ(m.max_row_length(), 3);
}

TEST(Csr, AtReturnsValuesAndZeros) {
  const Csr m = csr_from_coo(small_coo());
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 6.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 3), 0.0);
}

TEST(Csr, OutOfBoundsEntryThrows) {
  Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 5, 1.0);
  EXPECT_THROW((void)csr_from_coo(std::move(c)), std::out_of_range);
}

TEST(Csr, InfNorm) {
  const Csr m = csr_from_coo(small_coo());
  EXPECT_DOUBLE_EQ(m.inf_norm(), 15.0);  // |4| + |5| + |6|
}

TEST(Csr, CooRoundTrip) {
  const Csr m = csr_from_coo(small_coo());
  const Csr again = csr_from_coo(coo_from_csr(m));
  EXPECT_EQ(m.row_ptr, again.row_ptr);
  EXPECT_EQ(m.col_idx, again.col_idx);
  EXPECT_EQ(m.val, again.val);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const Csr m = csr_from_coo(small_coo());
  const Csr tt = transpose(transpose(m));
  EXPECT_EQ(m.row_ptr, tt.row_ptr);
  EXPECT_EQ(m.col_idx, tt.col_idx);
  EXPECT_EQ(m.val, tt.val);
}

TEST(Csr, TransposeEntries) {
  const Csr m = csr_from_coo(small_coo());
  const Csr t = transpose(m);
  EXPECT_EQ(t.nrows, 4);
  EXPECT_EQ(t.ncols, 3);
  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t c = 0; c < m.ncols; ++c) {
      EXPECT_DOUBLE_EQ(m.at(r, c), t.at(c, r));
    }
  }
}

TEST(Csr, SplitDiagonal) {
  Coo c;
  c.nrows = c.ncols = 3;
  c.add(0, 0, -2.0);
  c.add(0, 1, 1.0);
  c.add(1, 1, -3.0);
  c.add(2, 0, 4.0);  // row 2 has no diagonal entry
  const auto [diag, off] = split_diagonal(csr_from_coo(std::move(c)));
  EXPECT_DOUBLE_EQ(diag[0], -2.0);
  EXPECT_DOUBLE_EQ(diag[1], -3.0);
  EXPECT_DOUBLE_EQ(diag[2], 0.0);
  EXPECT_EQ(off.nnz(), 2u);
  EXPECT_DOUBLE_EQ(off.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(off.at(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(off.at(0, 0), 0.0);
}

TEST(Csr, SpmvMatchesDenseOracle) {
  Xoshiro256 rng(99);
  Coo c;
  c.nrows = 37;
  c.ncols = 29;
  for (int e = 0; e < 200; ++e) {
    c.add(static_cast<index_t>(rng.bounded(37)),
          static_cast<index_t>(rng.bounded(29)), rng.uniform(-1, 1));
  }
  const Csr m = csr_from_coo(std::move(c));
  const Dense d = dense_from_csr(m);

  std::vector<real_t> x(29);
  for (auto& v : x) v = rng.uniform(-2, 2);
  std::vector<real_t> y1(37);
  std::vector<real_t> y2(37);
  spmv(m, x, y1);
  spmv(d, x, y2);
  for (int i = 0; i < 37; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Dense, RoundTripThroughCsr) {
  Dense d(3, 3);
  d(0, 0) = 1.0;
  d(1, 2) = -2.0;
  d(2, 1) = 0.5;
  const Dense back = dense_from_csr(csr_from_dense(d));
  for (index_t r = 0; r < 3; ++r) {
    for (index_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(d(r, c), back(r, c));
    }
  }
}

}  // namespace
}  // namespace cmesolve::sparse
