// Unit tests for the ELL and DIA formats.
#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "util/rng.hpp"

namespace cmesolve::sparse {
namespace {

Csr random_matrix(index_t n, index_t max_row, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Coo c;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    const auto len = 1 + rng.bounded(static_cast<std::uint64_t>(max_row));
    for (std::uint64_t j = 0; j < len; ++j) {
      c.add(r, static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(n))),
            rng.uniform(-1, 1));
    }
  }
  return csr_from_coo(std::move(c));
}

std::vector<real_t> random_vector(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  return x;
}

// --- ELL ---------------------------------------------------------------------

TEST(Ell, PaddedRowsMultipleOfWarp) {
  const Csr m = random_matrix(100, 4, 1);
  const Ell e = ell_from_csr(m);
  EXPECT_EQ(e.padded_rows, 128);
  EXPECT_EQ(e.padded_rows % 32, 0);
  EXPECT_EQ(e.nrows, 100);
}

TEST(Ell, ExactMultipleNotPadded) {
  const Csr m = random_matrix(96, 4, 2);
  EXPECT_EQ(ell_from_csr(m).padded_rows, 96);
}

TEST(Ell, KIsMaxRowLength) {
  const Csr m = random_matrix(64, 6, 3);
  EXPECT_EQ(ell_from_csr(m).k, m.max_row_length());
}

TEST(Ell, ColumnMajorLayoutAndPadding) {
  // Row 0: two entries; row 1: one entry.
  Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, 1.0);
  c.add(0, 1, 2.0);
  c.add(1, 1, 3.0);
  const Ell e = ell_from_csr(csr_from_coo(std::move(c)));
  EXPECT_EQ(e.k, 2);
  EXPECT_EQ(e.padded_rows, 32);
  // (r=0, j=0) at slot 0; (r=0, j=1) at slot padded_rows.
  EXPECT_DOUBLE_EQ(e.val[0], 1.0);
  EXPECT_EQ(e.col[0], 0);
  EXPECT_DOUBLE_EQ(e.val[static_cast<std::size_t>(e.padded_rows)], 2.0);
  EXPECT_EQ(e.col[static_cast<std::size_t>(e.padded_rows)], 1);
  // Row 1 second slot is padding.
  EXPECT_EQ(e.col[static_cast<std::size_t>(e.padded_rows) + 1], kPadColumn);
  EXPECT_DOUBLE_EQ(e.val[static_cast<std::size_t>(e.padded_rows) + 1], 0.0);
}

TEST(Ell, EfficiencyMetric) {
  // 32 rows, all length 2 except one of length 8: e = nnz / (n' * k).
  Coo c;
  c.nrows = c.ncols = 32;
  for (index_t r = 0; r < 32; ++r) {
    c.add(r, 0, 1.0);
    c.add(r, 1, 1.0);
  }
  for (index_t j = 2; j < 8; ++j) c.add(0, j, 1.0);
  const Ell e = ell_from_csr(csr_from_coo(std::move(c)));
  EXPECT_EQ(e.k, 8);
  EXPECT_DOUBLE_EQ(e.efficiency(), 70.0 / (32.0 * 8.0));
}

TEST(Ell, SpmvMatchesCsr) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    const Csr m = random_matrix(150, 7, seed);
    const Ell e = ell_from_csr(m);
    const auto x = random_vector(m.ncols, seed + 100);
    std::vector<real_t> y1(static_cast<std::size_t>(m.nrows));
    std::vector<real_t> y2(static_cast<std::size_t>(m.nrows));
    spmv(m, x, y1);
    spmv(e, x, y2);
    for (index_t i = 0; i < m.nrows; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
  }
}

TEST(Ell, BytesAccounting) {
  const Csr m = random_matrix(64, 3, 5);
  const Ell e = ell_from_csr(m);
  EXPECT_EQ(e.bytes(), static_cast<std::size_t>(e.padded_rows) * e.k * 12);
}

// --- DIA ---------------------------------------------------------------------

Csr tridiagonal(index_t n) {
  Coo c;
  c.nrows = c.ncols = n;
  for (index_t i = 0; i < n; ++i) {
    c.add(i, i, -2.0);
    if (i > 0) c.add(i, i - 1, 1.0);
    if (i < n - 1) c.add(i, i + 1, 1.0);
  }
  return csr_from_coo(std::move(c));
}

TEST(Dia, ExtractsTridiagonalFully) {
  const Csr m = tridiagonal(50);
  const Dia d = dia_from_csr(m, {-1, 0, 1});
  EXPECT_EQ(d.nnz, m.nnz());
  EXPECT_DOUBLE_EQ(d.density(), 1.0);
}

TEST(Dia, OffsetsSorted) {
  const Dia d = dia_from_csr(tridiagonal(10), {1, -1, 0});
  EXPECT_EQ(d.offsets, (std::vector<index_t>{-1, 0, 1}));
}

TEST(Dia, PartialExtraction) {
  const Csr m = tridiagonal(50);
  const Dia d = dia_from_csr(m, {0});
  EXPECT_EQ(d.nnz, 50u);
  EXPECT_DOUBLE_EQ(d.density(), 1.0);
  for (index_t i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(d.data[i], -2.0);
}

TEST(Dia, SpmvMatchesCsrOnBandedMatrix) {
  const Csr m = tridiagonal(77);
  const Dia d = dia_from_csr(m, {-1, 0, 1});
  const auto x = random_vector(77, 42);
  std::vector<real_t> y1(77);
  std::vector<real_t> y2(77);
  spmv(m, x, y1);
  spmv(d, x, y2);
  for (index_t i = 0; i < 77; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Dia, SpmvAddAccumulates) {
  const Dia d = dia_from_csr(tridiagonal(10), {0});
  std::vector<real_t> x(10, 1.0);
  std::vector<real_t> y(10, 5.0);
  spmv_add(d, x, y);
  for (index_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(y[i], 3.0);  // 5 + (-2)
}

TEST(Dia, StripRemovesExactlyTheBand) {
  const Csr m = random_matrix(60, 5, 77);
  const std::vector<index_t> offsets{-1, 0, 1};
  const Dia band = dia_from_csr(m, offsets);
  const Csr rest = strip_diagonals(m, offsets);
  EXPECT_EQ(band.nnz + rest.nnz(), m.nnz());
  // Sum reconstructs the original matrix.
  const auto x = random_vector(60, 5);
  std::vector<real_t> y_full(60);
  std::vector<real_t> y_sum(60);
  spmv(m, x, y_full);
  spmv(rest, x, y_sum);
  spmv_add(band, x, y_sum);
  for (index_t i = 0; i < 60; ++i) EXPECT_NEAR(y_full[i], y_sum[i], 1e-12);
}

TEST(Dia, DensityOfEmptyDiagonalIsZero) {
  const Csr m = tridiagonal(20);
  const auto density = diagonal_density(m, std::vector<index_t>{5});
  EXPECT_DOUBLE_EQ(density[0], 0.0);
}

TEST(Dia, DensityPerOffset) {
  const Csr m = tridiagonal(20);
  const std::vector<index_t> offs{-1, 0, 1, 2};
  const auto density = diagonal_density(m, offs);
  EXPECT_DOUBLE_EQ(density[0], 1.0);
  EXPECT_DOUBLE_EQ(density[1], 1.0);
  EXPECT_DOUBLE_EQ(density[2], 1.0);
  EXPECT_DOUBLE_EQ(density[3], 0.0);
}

TEST(Dia, RectangularBoundsRespected) {
  Coo c;
  c.nrows = 3;
  c.ncols = 5;
  c.add(0, 1, 1.0);
  c.add(1, 2, 2.0);
  c.add(2, 3, 3.0);
  const Csr m = csr_from_coo(std::move(c));
  const Dia d = dia_from_csr(m, {1});
  EXPECT_EQ(d.nnz, 3u);
  std::vector<real_t> x(5, 1.0);
  std::vector<real_t> y(3);
  spmv(d, x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

}  // namespace
}  // namespace cmesolve::sparse
