// Unit tests for the hybrid band+remainder formats, format statistics and
// Matrix Market I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/format_stats.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/matrix_market.hpp"
#include "util/rng.hpp"

namespace cmesolve::sparse {
namespace {

/// Banded matrix with a dense {-1,0,+1} band plus scattered extras; a few
/// rows get a long tail so the spill path is exercised.
Csr banded_with_outliers(index_t n, std::uint64_t seed,
                         index_t outlier_period = 97) {
  Xoshiro256 rng(seed);
  Coo c;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    c.add(r, r, -4.0);
    if (r > 0) c.add(r, r - 1, 1.0);
    if (r < n - 1) c.add(r, r + 1, 1.0);
    c.add(r, (r + n / 2) % n, 0.5);
    if (r % outlier_period == 0) {  // outlier rows
      for (index_t j = 0; j < 6; ++j) {
        c.add(r, (r + 7 + 13 * j) % n, 0.25);
      }
    }
  }
  Csr m = csr_from_coo(std::move(c));
  return m;
}

std::vector<real_t> random_vector(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  return x;
}

// --- band selection -----------------------------------------------------------

TEST(BandSelection, DenseBandSelected) {
  const Csr m = banded_with_outliers(300, 1);
  EXPECT_EQ(select_band_offsets(m), (std::vector<index_t>{-1, 0, 1}));
}

TEST(BandSelection, SparseBandRejected) {
  // Diagonal plus far scattered entries only: neighbours are empty.
  Coo c;
  c.nrows = c.ncols = 100;
  for (index_t r = 0; r < 100; ++r) {
    c.add(r, r, -1.0);
    c.add(r, (r + 50) % 100, 1.0);
  }
  EXPECT_EQ(select_band_offsets(csr_from_coo(std::move(c))),
            (std::vector<index_t>{0}));
}

// --- EllDia --------------------------------------------------------------------

TEST(EllDia, PartitionCoversEveryNonzero) {
  const Csr m = banded_with_outliers(400, 2);
  const EllDia h = ell_dia_from_csr(m, {-1, 0, 1});
  EXPECT_EQ(h.band.nnz + h.rest.nnz + h.spill.nnz(), m.nnz());
}

TEST(EllDia, SpillCapsRestK) {
  const Csr m = banded_with_outliers(970, 3);
  const EllDia h = ell_dia_from_csr(m, {-1, 0, 1});
  // Most rows have exactly 1 off-band entry; outlier rows have 7. The 0.99
  // quantile is 1, so the ELL part stays at k = 1.
  EXPECT_EQ(h.rest.k, 1);
  EXPECT_GT(h.spill.nnz(), 0u);
}

TEST(EllDia, SpmvMatchesCsr) {
  const Csr m = banded_with_outliers(500, 4);
  const EllDia h = ell_dia_from_csr(m, {-1, 0, 1});
  const auto x = random_vector(500, 21);
  std::vector<real_t> expect(500);
  std::vector<real_t> y(500);
  spmv(m, x, expect);
  spmv(h, x, y);
  for (index_t i = 0; i < 500; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

TEST(EllDia, DiagonalOnlyBand) {
  const Csr m = banded_with_outliers(200, 5);
  const EllDia h = ell_dia_from_csr(m, {0});
  const auto x = random_vector(200, 22);
  std::vector<real_t> expect(200);
  std::vector<real_t> y(200);
  spmv(m, x, expect);
  spmv(h, x, y);
  for (index_t i = 0; i < 200; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

// --- SlicedEllDia ---------------------------------------------------------------

TEST(SlicedEllDia, SpmvMatchesCsr) {
  const Csr m = banded_with_outliers(450, 6);
  const SlicedEllDia h = sliced_ell_dia_from_csr(m, {-1, 0, 1});
  const auto x = random_vector(450, 23);
  std::vector<real_t> expect(450);
  std::vector<real_t> y(450);
  spmv(m, x, expect);
  spmv(h, x, y);
  for (index_t i = 0; i < 450; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

TEST(SlicedEllDia, BandHoldsTheDiagonal) {
  const Csr m = banded_with_outliers(100, 7);
  const SlicedEllDia h = sliced_ell_dia_from_csr(m, {-1, 0, 1});
  const auto it = std::find(h.band.offsets.begin(), h.band.offsets.end(), 0);
  ASSERT_NE(it, h.band.offsets.end());
  const auto d0 = static_cast<std::size_t>(it - h.band.offsets.begin());
  for (index_t r = 0; r < 100; ++r) {
    EXPECT_DOUBLE_EQ(h.band.data[d0 * 100 + static_cast<std::size_t>(r)],
                     m.at(r, r));
  }
}

// --- CsrDia ----------------------------------------------------------------------

TEST(CsrDia, SpmvMatchesCsr) {
  const Csr m = banded_with_outliers(380, 8);
  const CsrDia h = csr_dia_from_csr(m, {-1, 0, 1});
  const auto x = random_vector(380, 24);
  std::vector<real_t> expect(380);
  std::vector<real_t> y(380);
  spmv(m, x, expect);
  spmv(h, x, y);
  for (index_t i = 0; i < 380; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
}

// --- fingerprints / footprints ------------------------------------------------------

TEST(Fingerprint, HandBuiltMatrix) {
  // 4 rows of lengths 1, 2, 3, 2.
  Coo c;
  c.nrows = c.ncols = 4;
  c.add(0, 0, -1.0);
  c.add(1, 0, 1.0);
  c.add(1, 1, -1.0);
  c.add(2, 1, 1.0);
  c.add(2, 2, -1.0);
  c.add(2, 3, 1.0);
  c.add(3, 2, 1.0);
  c.add(3, 3, -1.0);
  const auto f = fingerprint(csr_from_coo(std::move(c)));
  EXPECT_EQ(f.n, 4);
  EXPECT_EQ(f.nnz, 8u);
  EXPECT_EQ(f.row_min, 1);
  EXPECT_EQ(f.row_max, 3);
  EXPECT_DOUBLE_EQ(f.row_mean, 2.0);
  EXPECT_DOUBLE_EQ(f.d0, 1.0);
  EXPECT_DOUBLE_EQ(f.skew, 0.5);
}

TEST(Footprints, OrderingOnSkewedMatrix) {
  // Outliers rare enough that most 256-row slices keep the short local k.
  const Csr m = banded_with_outliers(2000, 9, /*outlier_period=*/499);
  const auto fp = footprints(m);
  EXPECT_LT(fp.warped_ell, fp.sliced_ell);
  EXPECT_LT(fp.sliced_ell, fp.ell);
  EXPECT_EQ(fp.csr, (m.row_ptr.size() + m.col_idx.size()) * 4 +
                        m.val.size() * 8);
  EXPECT_EQ(fp.coo, m.nnz() * 16);
}

TEST(Fingerprint, DiskSizeMatchesActualFile) {
  const Csr m = banded_with_outliers(50, 10);
  std::ostringstream out;
  write_matrix_market(out, m);
  EXPECT_EQ(matrix_market_size_bytes(m), out.str().size());
}

// --- matrix market ---------------------------------------------------------------

TEST(MatrixMarket, RoundTrip) {
  const Csr m = banded_with_outliers(120, 11);
  std::stringstream io;
  write_matrix_market(io, m);
  const Csr back = read_matrix_market(io);
  ASSERT_EQ(back.nrows, m.nrows);
  ASSERT_EQ(back.nnz(), m.nnz());
  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      EXPECT_NEAR(back.at(r, m.col_idx[p]), m.val[p],
                  1e-6 * std::abs(m.val[p]) + 1e-12);
    }
  }
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 3 5.0\n");
  const Csr m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 4u);  // the (2,1) entry mirrors to (1,2)
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
}

TEST(MatrixMarket, PatternField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const Csr m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

TEST(MatrixMarket, CommentsSkipped) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment line\n"
      "% another\n"
      "1 1 1\n"
      "1 1 3.5\n");
  const Csr m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
}

TEST(MatrixMarket, MalformedInputsThrow) {
  const auto expect_throw = [](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW((void)read_matrix_market(in), std::runtime_error) << text;
  };
  expect_throw("");
  expect_throw("%%MatrixMarket tensor coordinate real general\n1 1 1\n1 1 1\n");
  expect_throw("%%MatrixMarket matrix array real general\n1 1\n1.0\n");
  expect_throw("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  expect_throw("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
}

}  // namespace
}  // namespace cmesolve::sparse
