// Unit tests for sliced / warp-grained ELL and the reordering strategies.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sparse/csr.hpp"
#include "sparse/ell.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/rng.hpp"

namespace cmesolve::sparse {
namespace {

/// Matrix with strongly varying row lengths: row r has 1 + (r % spread)
/// nonzeros in a near-diagonal band.
Csr skewed_matrix(index_t n, index_t spread) {
  Coo c;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    const index_t len = 1 + (r % spread);
    for (index_t j = 0; j < len; ++j) {
      c.add(r, (r + j) % n, 1.0 + static_cast<real_t>(j));
    }
  }
  return csr_from_coo(std::move(c));
}

std::vector<real_t> random_vector(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  return x;
}

TEST(SlicedEll, SliceCountAndK) {
  const Csr m = skewed_matrix(100, 8);
  const SlicedEll s = sliced_ell_from_csr(m, 32);
  EXPECT_EQ(s.num_slices(), 4);  // ceil(100/32)
  for (index_t sl = 0; sl < s.num_slices(); ++sl) {
    index_t expected = 0;
    for (index_t lane = 0; lane < 32; ++lane) {
      const index_t stored = sl * 32 + lane;
      if (stored >= m.nrows) break;
      expected = std::max(expected, m.row_length(s.perm[stored]));
    }
    EXPECT_EQ(s.slice_k[sl], expected);
  }
}

TEST(SlicedEll, SlicePtrConsistent) {
  const Csr m = skewed_matrix(200, 5);
  const SlicedEll s = sliced_ell_from_csr(m, 32);
  EXPECT_EQ(s.slice_ptr.front(), 0u);
  for (index_t sl = 0; sl < s.num_slices(); ++sl) {
    EXPECT_EQ(s.slice_ptr[sl + 1] - s.slice_ptr[sl],
              static_cast<std::size_t>(s.slice_k[sl]) * 32);
  }
  EXPECT_EQ(s.slice_ptr.back(), s.val.size());
}

TEST(SlicedEll, IdentityPermWithoutReordering) {
  const Csr m = skewed_matrix(100, 8);
  EXPECT_TRUE(sliced_ell_from_csr(m, 32).is_identity_perm());
}

TEST(SlicedEll, PermIsAPermutation) {
  const Csr m = skewed_matrix(300, 9);
  for (auto r : {Reordering::kLocal, Reordering::kGlobal, Reordering::kRandom}) {
    const SlicedEll s = sliced_ell_from_csr(m, 32, r, 256);
    std::vector<index_t> sorted = s.perm;
    std::sort(sorted.begin(), sorted.end());
    for (index_t i = 0; i < m.nrows; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(SlicedEll, GlobalSortOrdersByLengthDescending) {
  const Csr m = skewed_matrix(300, 9);
  const SlicedEll s = pjds_from_csr(m);
  for (std::size_t i = 1; i < s.perm.size(); ++i) {
    EXPECT_GE(m.row_length(s.perm[i - 1]), m.row_length(s.perm[i]));
  }
}

TEST(SlicedEll, LocalRearrangementStaysInsideWindow) {
  const Csr m = skewed_matrix(1000, 13);
  const SlicedEll s = sliced_ell_from_csr(m, 32, Reordering::kLocal, 256);
  for (std::size_t i = 0; i < s.perm.size(); ++i) {
    EXPECT_EQ(static_cast<index_t>(i) / 256, s.perm[i] / 256)
        << "row moved across a block window";
  }
}

TEST(SlicedEll, LocalRearrangementNeverIncreasesPadding) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Xoshiro256 rng(seed);
    Coo c;
    c.nrows = c.ncols = 500;
    for (index_t r = 0; r < 500; ++r) {
      const auto len = 1 + rng.bounded(12);
      for (std::uint64_t j = 0; j < len; ++j) {
        c.add(r, static_cast<index_t>(rng.bounded(500)), 1.0);
      }
    }
    const Csr m = csr_from_coo(std::move(c));
    const SlicedEll plain = sliced_ell_from_csr(m, 32);
    const SlicedEll local = sliced_ell_from_csr(m, 32, Reordering::kLocal, 256);
    EXPECT_LE(local.val.size(), plain.val.size());
  }
}

TEST(SlicedEll, UniformRowsKeepIdentityUnderLocalReordering) {
  // All rows equally long: rearranging cannot reduce padding, so the format
  // must not pay for a permutation.
  Coo c;
  c.nrows = c.ncols = 256;
  for (index_t r = 0; r < 256; ++r) {
    c.add(r, r, 1.0);
    c.add(r, (r + 1) % 256, 2.0);
  }
  const SlicedEll s = sliced_ell_from_csr(csr_from_coo(std::move(c)), 32,
                                          Reordering::kLocal, 256);
  EXPECT_TRUE(s.is_identity_perm());
}

TEST(SlicedEll, SpmvMatchesCsrForAllReorderings) {
  const Csr m = skewed_matrix(350, 11);
  const auto x = random_vector(350, 5);
  std::vector<real_t> expect(350);
  spmv(m, x, expect);

  for (auto r : {Reordering::kNone, Reordering::kLocal, Reordering::kGlobal,
                 Reordering::kRandom}) {
    const SlicedEll s = sliced_ell_from_csr(m, 32, r, 128);
    std::vector<real_t> y(350, -1.0);
    spmv(s, x, y);
    for (index_t i = 0; i < 350; ++i) {
      EXPECT_NEAR(y[i], expect[i], 1e-12) << "reordering " << static_cast<int>(r);
    }
  }
}

TEST(SlicedEll, SpmvMatchesCsrForVariousSliceSizes) {
  const Csr m = skewed_matrix(123, 7);
  const auto x = random_vector(123, 9);
  std::vector<real_t> expect(123);
  spmv(m, x, expect);
  for (index_t slice : {1, 16, 32, 64, 256}) {
    const SlicedEll s = sliced_ell_from_csr(m, slice);
    std::vector<real_t> y(123);
    spmv(s, x, y);
    for (index_t i = 0; i < 123; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
  }
}

TEST(SlicedEll, WarpedUsesLessMemoryThanEllOnSkewedRows) {
  // Row lengths grow with the row index (regional clustering): coarse
  // slices already beat plain ELL, warp-grained slices beat both.
  Coo c;
  const index_t n = 2048;
  c.nrows = c.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    const index_t len = 1 + r * 15 / n + (r % 3);  // local jitter
    for (index_t j = 0; j < len; ++j) c.add(r, (r + j) % n, 1.0);
  }
  const Csr m = csr_from_coo(std::move(c));
  const Ell e = ell_from_csr(m);
  const SlicedEll sliced = sliced_ell_from_csr(m, 256);
  const SlicedEll warped = warped_ell_from_csr(m);
  EXPECT_LT(warped.bytes(), sliced.bytes());
  EXPECT_LT(sliced.bytes(), e.bytes());
}

TEST(SlicedEll, EfficiencyImprovesWithFinerSlices) {
  const Csr m = skewed_matrix(2000, 15);
  const real_t e256 = sliced_ell_from_csr(m, 256).efficiency();
  const real_t e32 = sliced_ell_from_csr(m, 32).efficiency();
  EXPECT_GT(e32, e256);
  EXPECT_GT(ell_from_csr(m).k, 0);
}

TEST(SlicedEll, RandomReorderingIsDeterministicPerSeed) {
  const Csr m = skewed_matrix(100, 4);
  const SlicedEll a = sliced_ell_from_csr(m, 32, Reordering::kRandom, 256, 7);
  const SlicedEll b = sliced_ell_from_csr(m, 32, Reordering::kRandom, 256, 7);
  const SlicedEll c = sliced_ell_from_csr(m, 32, Reordering::kRandom, 256, 8);
  EXPECT_EQ(a.perm, b.perm);
  EXPECT_NE(a.perm, c.perm);
}

}  // namespace
}  // namespace cmesolve::sparse
