// Property-based SpMV equivalence: every format must agree with the dense
// oracle on randomized matrices across a (size x density x seed) sweep.
#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <tuple>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/rng.hpp"

namespace cmesolve::sparse {
namespace {

struct Params {
  index_t n;
  index_t max_row_len;
  bool banded;  // band-dominated vs scattered columns
  std::uint64_t seed;
};

class SpmvProperty : public ::testing::TestWithParam<Params> {
 protected:
  static Csr make_matrix(const Params& p) {
    Xoshiro256 rng(p.seed);
    Coo c;
    c.nrows = c.ncols = p.n;
    for (index_t r = 0; r < p.n; ++r) {
      c.add(r, r, rng.uniform(-4, -2));  // dense diagonal (CME-like)
      const auto extra = rng.bounded(static_cast<std::uint64_t>(p.max_row_len));
      for (std::uint64_t j = 0; j < extra; ++j) {
        index_t col;
        if (p.banded) {
          col = std::clamp<index_t>(
              r + static_cast<index_t>(rng.range(-2, 2)), 0, p.n - 1);
        } else {
          col = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(p.n)));
        }
        c.add(r, col, rng.uniform(0.1, 1.0));
      }
    }
    return csr_from_coo(std::move(c));
  }

  static std::vector<real_t> make_x(index_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed ^ 0xABCDEF);
    std::vector<real_t> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.uniform(-1, 1);
    return x;
  }

  template <class Format>
  void expect_matches(const Format& fmt, const Csr& m,
                      std::span<const real_t> x,
                      std::span<const real_t> expect, const char* name) {
    std::vector<real_t> y(static_cast<std::size_t>(m.nrows),
                          std::numeric_limits<real_t>::quiet_NaN());
    spmv(fmt, x, y);
    for (index_t i = 0; i < m.nrows; ++i) {
      ASSERT_NEAR(y[i], expect[i], 1e-11) << name << " row " << i;
    }
  }
};

TEST_P(SpmvProperty, AllFormatsAgreeWithDenseOracle) {
  const Params p = GetParam();
  const Csr m = make_matrix(p);
  const auto x = make_x(p.n, p.seed);

  std::vector<real_t> expect(static_cast<std::size_t>(p.n));
  spmv(dense_from_csr(m), x, expect);

  expect_matches(m, m, x, expect, "csr");
  expect_matches(ell_from_csr(m), m, x, expect, "ell");
  expect_matches(sliced_ell_from_csr(m, 256), m, x, expect, "sliced-256");
  expect_matches(warped_ell_from_csr(m), m, x, expect, "warped");
  expect_matches(pjds_from_csr(m), m, x, expect, "pjds");
  expect_matches(ell_dia_from_csr(m, select_band_offsets(m)), m, x, expect,
                 "ell+dia");
  expect_matches(sliced_ell_dia_from_csr(m, {-1, 0, 1}), m, x, expect,
                 "warped-ell+dia");
  expect_matches(csr_dia_from_csr(m, {-1, 0, 1}), m, x, expect, "csr+dia");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmvProperty,
    ::testing::Values(
        Params{1, 1, true, 1}, Params{7, 2, true, 2}, Params{31, 3, false, 3},
        Params{32, 4, true, 4}, Params{33, 5, false, 5},
        Params{64, 6, true, 6}, Params{100, 8, false, 7},
        Params{255, 3, true, 8}, Params{256, 10, false, 9},
        Params{257, 5, true, 10}, Params{500, 12, false, 11},
        Params{777, 7, true, 12}, Params{1024, 4, false, 13},
        Params{1500, 9, true, 14}),
    [](const auto& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_len" +
             std::to_string(param_info.param.max_row_len) +
             (param_info.param.banded ? "_banded" : "_scattered") + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace cmesolve::sparse
