// Property-based SpMV equivalence: every format must agree with the dense
// oracle on randomized matrices across a (size x density x seed) sweep, and
// the matrix-free stencil operator must agree with the assembled CSR
// operator on randomized reaction networks.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <span>
#include <tuple>

#include "core/rate_matrix.hpp"
#include "core/reaction_network.hpp"
#include "core/state_space.hpp"
#include "solver/operators.hpp"
#include "solver/stencil_operator.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cmesolve::sparse {
namespace {

struct Params {
  index_t n;
  index_t max_row_len;
  bool banded;  // band-dominated vs scattered columns
  std::uint64_t seed;
};

class SpmvProperty : public ::testing::TestWithParam<Params> {
 protected:
  static Csr make_matrix(const Params& p) {
    Xoshiro256 rng(p.seed);
    Coo c;
    c.nrows = c.ncols = p.n;
    for (index_t r = 0; r < p.n; ++r) {
      c.add(r, r, rng.uniform(-4, -2));  // dense diagonal (CME-like)
      const auto extra = rng.bounded(static_cast<std::uint64_t>(p.max_row_len));
      for (std::uint64_t j = 0; j < extra; ++j) {
        index_t col;
        if (p.banded) {
          col = std::clamp<index_t>(
              r + static_cast<index_t>(rng.range(-2, 2)), 0, p.n - 1);
        } else {
          col = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(p.n)));
        }
        c.add(r, col, rng.uniform(0.1, 1.0));
      }
    }
    return csr_from_coo(std::move(c));
  }

  static std::vector<real_t> make_x(index_t n, std::uint64_t seed) {
    Xoshiro256 rng(seed ^ 0xABCDEF);
    std::vector<real_t> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.uniform(-1, 1);
    return x;
  }

  template <class Format>
  void expect_matches(const Format& fmt, const Csr& m,
                      std::span<const real_t> x,
                      std::span<const real_t> expect, const char* name) {
    std::vector<real_t> y(static_cast<std::size_t>(m.nrows),
                          std::numeric_limits<real_t>::quiet_NaN());
    spmv(fmt, x, y);
    for (index_t i = 0; i < m.nrows; ++i) {
      ASSERT_NEAR(y[i], expect[i], 1e-11) << name << " row " << i;
    }
  }
};

TEST_P(SpmvProperty, AllFormatsAgreeWithDenseOracle) {
  const Params p = GetParam();
  const Csr m = make_matrix(p);
  const auto x = make_x(p.n, p.seed);

  std::vector<real_t> expect(static_cast<std::size_t>(p.n));
  spmv(dense_from_csr(m), x, expect);

  expect_matches(m, m, x, expect, "csr");
  expect_matches(ell_from_csr(m), m, x, expect, "ell");
  expect_matches(sliced_ell_from_csr(m, 256), m, x, expect, "sliced-256");
  expect_matches(warped_ell_from_csr(m), m, x, expect, "warped");
  expect_matches(pjds_from_csr(m), m, x, expect, "pjds");
  expect_matches(ell_dia_from_csr(m, select_band_offsets(m)), m, x, expect,
                 "ell+dia");
  expect_matches(sliced_ell_dia_from_csr(m, {-1, 0, 1}), m, x, expect,
                 "warped-ell+dia");
  expect_matches(csr_dia_from_csr(m, {-1, 0, 1}), m, x, expect, "csr+dia");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmvProperty,
    ::testing::Values(
        Params{1, 1, true, 1}, Params{7, 2, true, 2}, Params{31, 3, false, 3},
        Params{32, 4, true, 4}, Params{33, 5, false, 5},
        Params{64, 6, true, 6}, Params{100, 8, false, 7},
        Params{255, 3, true, 8}, Params{256, 10, false, 9},
        Params{257, 5, true, 10}, Params{500, 12, false, 11},
        Params{777, 7, true, 12}, Params{1024, 4, false, 13},
        Params{1500, 9, true, 14}),
    [](const auto& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_len" +
             std::to_string(param_info.param.max_row_len) +
             (param_info.param.banded ? "_banded" : "_scattered") + "_s" +
             std::to_string(param_info.param.seed);
    });

// --- Matrix-free stencil vs assembled CSR on random networks ----------------

namespace stencil_property {

struct RandomModel {
  core::ReactionNetwork network;
  core::State initial;
};

/// Random mass-action network with deliberately tiny capacities so a large
/// fraction of the enumerated states sit on buffer boundaries — the regime
/// where the stencil's masking/windowing logic has to earn its keep.
RandomModel random_model(std::uint64_t seed) {
  Xoshiro256 rng(seed * 1000003 + 17);
  RandomModel m;
  const int ns = 2 + static_cast<int>(rng.bounded(3));
  for (int s = 0; s < ns; ++s) {
    m.network.add_species("S" + std::to_string(s),
                          3 + static_cast<std::int32_t>(rng.bounded(6)));
  }
  const int nr = 3 + static_cast<int>(rng.bounded(6));
  for (int k = 0; k < nr; ++k) {
    core::Reaction r;
    r.name = "R" + std::to_string(k);
    r.rate = rng.uniform(0.1, 4.0);
    const auto nreact = rng.bounded(3);  // 0..2 reactant terms
    for (std::uint64_t i = 0; i < nreact; ++i) {
      r.reactants.push_back(
          {static_cast<int>(rng.bounded(static_cast<std::uint64_t>(ns))),
           1 + static_cast<std::int32_t>(rng.bounded(2))});
    }
    // 1..2 net changes on distinct species, never zero so the reaction is
    // a real transition (delta in {-2,-1,1,2} walks states onto and past
    // the capacity boundaries).
    const int nchg = 1 + static_cast<int>(rng.bounded(2));
    for (int i = 0; i < nchg; ++i) {
      const int sp = (static_cast<int>(rng.bounded(
                         static_cast<std::uint64_t>(ns))) + i) % ns;
      bool dup = false;
      for (const auto& c : r.changes) dup = dup || c.species == sp;
      if (dup) continue;
      const std::int32_t mag = 1 + static_cast<std::int32_t>(rng.bounded(2));
      r.changes.push_back({sp, rng.bounded(2) ? mag : -mag});
    }
    m.network.add_reaction(std::move(r));
  }
  m.initial.resize(static_cast<std::size_t>(ns));
  for (int s = 0; s < ns; ++s) {
    m.initial[static_cast<std::size_t>(s)] = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(m.network.capacity(s)) + 1));
  }
  return m;
}

struct ThreadGuard {
  explicit ThreadGuard(int n) { util::set_max_threads(n); }
  ~ThreadGuard() { util::set_max_threads(0); }
};

TEST(StencilVsCsrProperty, MultiplyMatchesTo1em13At1And8Threads) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RandomModel m = random_model(seed);
    const core::StateSpace space(m.network, m.initial, 1'000'000);
    ASSERT_FALSE(space.truncated());
    const auto a = core::rate_matrix(space);
    const solver::CsrOperator csr_op(a);
    const solver::StencilOperator stencil(m.network, m.initial);

    const auto n = static_cast<std::size_t>(space.size());
    const auto box = static_cast<std::size_t>(stencil.nrows());
    Xoshiro256 rng(seed ^ 0xFEEDFACE);
    std::vector<real_t> x(n);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);

    std::vector<real_t> y_csr(n);
    csr_op.multiply(x, y_csr);

    std::vector<real_t> x_box(box), y_box(box), y_full(n);
    stencil.scatter_from(space, x, x_box);

    std::vector<real_t> y_1thread;
    for (const int threads : {1, 8}) {
      ThreadGuard guard(threads);
      stencil.multiply(x_box, y_box);
      stencil.gather_to(space, y_box, y_full);
      for (std::size_t i = 0; i < n; ++i) {
        const real_t scale =
            std::max({std::abs(y_csr[i]), std::abs(y_full[i]), real_t{1.0}});
        ASSERT_LE(std::abs(y_csr[i] - y_full[i]) / scale, 1e-13)
            << "threads=" << threads << " row " << i;
      }
      if (threads == 1) {
        y_1thread = y_box;
      } else {
        ASSERT_EQ(std::memcmp(y_1thread.data(), y_box.data(),
                              y_box.size() * sizeof(real_t)),
                  0)
            << "sweep not bit-identical between 1 and 8 threads";
      }
    }
  }
}

}  // namespace stencil_property

}  // namespace
}  // namespace cmesolve::sparse
