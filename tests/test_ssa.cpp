// Tests for the SSA substrate: exact-sampler statistics against closed
// forms, agreement between the two samplers, and cross-validation of the
// Jacobi steady state by trajectory time-averaging.
#include <gtest/gtest.h>

#include <cmath>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "ssa/ssa.hpp"

namespace cmesolve::ssa {
namespace {

core::ReactionNetwork immigration_death(std::int32_t cap, real_t lambda,
                                        real_t mu) {
  core::ReactionNetwork net;
  const int x = net.add_species("X", cap);
  net.add_reaction("birth", lambda, {}, {{x, +1}});
  net.add_reaction("death", mu, {{x, 1}}, {{x, -1}});
  return net;
}

TEST(DirectMethod, WaitingTimeIsExponential) {
  // From the empty state only the birth reaction (rate 3) can fire: the
  // mean waiting time must be 1/3.
  const auto net = immigration_death(10, 3.0, 1.0);
  DirectMethod sim(net, 7);
  real_t sum = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const Event e = sim.next_event(core::State{0});
    ASSERT_EQ(e.reaction, 0);
    sum += e.dt;
  }
  EXPECT_NEAR(sum / samples, 1.0 / 3.0, 0.01);
}

TEST(DirectMethod, ReactionSelectionFollowsPropensities) {
  // At X = 6 with lambda = 2, mu = 1: birth propensity 2, death 6.
  const auto net = immigration_death(100, 2.0, 1.0);
  DirectMethod sim(net, 11);
  int births = 0;
  const int samples = 30000;
  for (int i = 0; i < samples; ++i) {
    births += sim.next_event(core::State{6}).reaction == 0;
  }
  EXPECT_NEAR(static_cast<real_t>(births) / samples, 2.0 / 8.0, 0.01);
}

TEST(DirectMethod, AbsorbingStateReported) {
  core::ReactionNetwork net;
  const int x = net.add_species("X", 5);
  net.add_reaction("decay", 1.0, {{x, 1}}, {{x, -1}});
  DirectMethod sim(net, 3);
  const Event e = sim.next_event(core::State{0});
  EXPECT_EQ(e.reaction, -1);

  core::State state{5};
  const auto events = sim.advance(state, 1000.0);
  EXPECT_EQ(state[0], 0);  // decayed to the absorbing empty state
  EXPECT_EQ(events, 5u);
}

TEST(DirectMethod, CapacityBlocksFiring) {
  const auto net = immigration_death(4, 100.0, 0.01);
  DirectMethod sim(net, 5);
  core::State x{0};
  (void)sim.advance(x, 100.0);
  EXPECT_LE(x[0], 4);
}

TEST(DirectMethod, SampleMeanMatchesPoisson) {
  // Stationary law is Poisson(4) (cap far in the tail): long-run mean ~ 4.
  const auto net = immigration_death(40, 4.0, 1.0);
  DirectMethod sim(net, 13);
  core::State x{0};
  (void)sim.advance(x, 50.0);  // burn in
  real_t weighted = 0.0;
  real_t total = 0.0;
  for (int chunk = 0; chunk < 4000; ++chunk) {
    const Event e = sim.next_event(x);
    ASSERT_GE(e.reaction, 0);
    weighted += x[0] * e.dt;
    total += e.dt;
    x = net.apply(e.reaction, x);
  }
  EXPECT_NEAR(weighted / total, 4.0, 0.25);
}

TEST(NextReaction, AgreesWithDirectMethodStatistics) {
  const auto net = immigration_death(40, 5.0, 1.0);
  const auto long_run_mean = [&](auto&& sim) {
    core::State x{0};
    (void)sim.advance(x, 30.0);  // burn-in
    // Time-average by chunked advancing.
    real_t weighted = 0.0;
    for (int chunk = 0; chunk < 3000; ++chunk) {
      (void)sim.advance(x, 0.25);
      weighted += x[0];
    }
    return weighted / 3000.0;
  };
  DirectMethod direct(net, 17);
  NextReactionMethod nrm(net, 19);
  const real_t mean_direct = long_run_mean(direct);
  const real_t mean_nrm = long_run_mean(nrm);
  EXPECT_NEAR(mean_direct, 5.0, 0.3);
  EXPECT_NEAR(mean_nrm, 5.0, 0.3);
}

TEST(NextReaction, HandlesBlockedAndReenabledReactions) {
  // Small buffer forces the birth reaction to toggle between blocked and
  // enabled; the putative-time bookkeeping must survive that.
  const auto net = immigration_death(2, 50.0, 10.0);
  NextReactionMethod sim(net, 23);
  core::State x{0};
  const auto events = sim.advance(x, 20.0);
  EXPECT_GT(events, 100u);
  EXPECT_LE(x[0], 2);
  EXPECT_GE(x[0], 0);
}

TEST(Empirical, MatchesJacobiOnImmigrationDeath) {
  const auto net = immigration_death(25, 4.0, 1.0);
  const core::StateSpace space(net, core::State{0}, 1000);
  const auto a = core::rate_matrix(space);

  std::vector<real_t> jacobi(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(jacobi);
  solver::CsrOperator op(a);
  solver::JacobiOptions jopt;
  jopt.eps = 1e-11;
  jopt.damping = 0.7;
  (void)solver::jacobi_solve(op, a.inf_norm(), jacobi, jopt);

  EmpiricalOptions eopt;
  eopt.burn_in = 20.0;
  eopt.horizon = 4000.0;
  const auto empirical = empirical_stationary(net, space, core::State{0}, eopt);

  EXPECT_LT(total_variation(jacobi, empirical), 0.03);
}

TEST(Empirical, MatchesJacobiOnToggleSwitch) {
  // The headline cross-validation: simulation agrees with the linear solve
  // on a genuinely 2-D bistable landscape.
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = 10;
  tp.synth = 6.0;
  const auto net = core::models::toggle_switch(tp);
  const core::StateSpace space(net, core::models::toggle_switch_initial(tp),
                               100000);
  const auto a = core::rate_matrix(space);

  std::vector<real_t> jacobi(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(jacobi);
  solver::CsrDiaOperator op(a);
  solver::JacobiOptions jopt;
  jopt.eps = 1e-10;
  (void)solver::jacobi_solve(op, a.inf_norm(), jacobi, jopt);

  EmpiricalOptions eopt;
  eopt.burn_in = 50.0;
  eopt.horizon = 20000.0;
  eopt.seed = 29;
  const auto empirical = empirical_stationary(
      net, space, core::models::toggle_switch_initial(tp), eopt);

  EXPECT_LT(total_variation(jacobi, empirical), 0.08);
}

TEST(Empirical, DistributionSumsToOne) {
  const auto net = immigration_death(10, 2.0, 1.0);
  const core::StateSpace space(net, core::State{0}, 1000);
  EmpiricalOptions eopt;
  eopt.horizon = 100.0;
  const auto e = empirical_stationary(net, space, core::State{0}, eopt);
  real_t sum = 0;
  for (real_t v : e) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(TotalVariation, BasicProperties) {
  const std::vector<real_t> p{0.5, 0.5, 0.0};
  const std::vector<real_t> q{0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(total_variation(p, p), 0.0);
  EXPECT_DOUBLE_EQ(total_variation(p, q), 0.5);
}

}  // namespace
}  // namespace cmesolve::ssa
