// Matrix-free stencil operator: geometry round-trips, exact agreement with
// the assembled CSR pipeline, thread-count determinism, and the masked FSP
// variant.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "core/stencil.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/stencil_operator.hpp"
#include "solver/vector_ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cmesolve::solver {
namespace {

using core::ReactionNetwork;
using core::State;
using core::StateSpace;
using core::StencilTable;

struct ThreadGuard {
  explicit ThreadGuard(int n) { util::set_max_threads(n); }
  ~ThreadGuard() { util::set_max_threads(0); }
};

core::models::ToggleSwitchParams tiny_toggle() {
  core::models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = 12;
  return p;
}

core::models::FutileCycleParams tiny_futile() {
  core::models::FutileCycleParams p;
  p.substrate_total = 30;
  return p;
}

std::vector<real_t> random_vector(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<real_t> x(n);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);
  return x;
}

real_t l1_distance(std::span<const real_t> a, std::span<const real_t> b) {
  real_t d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

// --- StencilTable geometry --------------------------------------------------

TEST(StencilTable, BoxIndexDecodeRoundTrip) {
  const auto tp = tiny_toggle();
  const auto net = core::models::toggle_switch(tp);
  const StateSpace space(net, core::models::toggle_switch_initial(tp), 100000);
  const StencilTable table(net, core::models::toggle_switch_initial(tp));

  std::vector<char> seen(static_cast<std::size_t>(table.box_rows()), 0);
  State x(static_cast<std::size_t>(net.num_species()));
  for (index_t j = 0; j < space.size(); ++j) {
    const index_t row = table.box_index(space.state(j));
    ASSERT_GE(row, 0) << "reachable state outside the stencil box";
    ASSERT_LT(row, table.box_rows());
    ASSERT_FALSE(seen[static_cast<std::size_t>(row)])
        << "two states mapped to box row " << row;
    seen[static_cast<std::size_t>(row)] = 1;
    table.decode(row, x);
    EXPECT_EQ(x, space.state(j)) << "decode mismatch at row " << row;
  }
}

TEST(StencilTable, FutileCycleConservationLawsShrinkTheBox) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const StencilTable table(net, core::models::futile_cycle_initial(fp));

  // Three independent conservation laws survive elimination, so the box is
  // a tiny fraction of the naive capacity product.
  EXPECT_EQ(table.laws().size(), 3u);
  std::int64_t naive = 1;
  for (int s = 0; s < net.num_species(); ++s) {
    naive *= net.capacity(s) + 1;
  }
  EXPECT_LT(table.box_rows() * 50, naive);

  // Every reachable state maps in; masked rows are exactly the invalid
  // derived-count corners.
  const StateSpace space(net, core::models::futile_cycle_initial(fp), 100000);
  EXPECT_FALSE(space.truncated());
  index_t valid = 0;
  State x(static_cast<std::size_t>(net.num_species()));
  for (index_t r = 0; r < table.box_rows(); ++r) {
    table.decode(r, x);
    if (table.row_valid(x)) ++valid;
  }
  EXPECT_EQ(table.box_rows() - valid, table.rows_masked());
  EXPECT_GE(valid, space.size());
}

TEST(StencilTable, DiagonalMatchesAssembledMatrixExactly) {
  for (int model = 0; model < 2; ++model) {
    ReactionNetwork net;
    State init;
    if (model == 0) {
      const auto tp = tiny_toggle();
      net = core::models::toggle_switch(tp);
      init = core::models::toggle_switch_initial(tp);
    } else {
      const auto fp = tiny_futile();
      net = core::models::futile_cycle(fp);
      init = core::models::futile_cycle_initial(fp);
    }
    const StateSpace space(net, init, 100000);
    const auto a = core::rate_matrix(space);
    const StencilTable table(net, init);
    const auto diag = table.diag();
    for (index_t j = 0; j < space.size(); ++j) {
      const index_t row = table.box_index(space.state(j));
      ASSERT_GE(row, 0);
      // Same propensity evaluation order as the assembler: bitwise equal.
      EXPECT_EQ(diag[static_cast<std::size_t>(row)], a.at(j, j))
          << "model " << model << " state " << j;
    }
  }
}

// --- multiply ---------------------------------------------------------------

class StencilMultiply : public ::testing::TestWithParam<StencilMode> {};

TEST_P(StencilMultiply, MatchesCsrOperator) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const auto init = core::models::futile_cycle_initial(fp);
  const StateSpace space(net, init, 100000);
  const auto a = core::rate_matrix(space);
  const CsrOperator csr(a);
  const StencilOperator op(net, init, GetParam());

  const auto n = static_cast<std::size_t>(space.size());
  const auto nbox = static_cast<std::size_t>(op.nrows());
  const auto x = random_vector(n, 99);
  std::vector<real_t> y_csr(n);
  csr.multiply(x, y_csr);

  std::vector<real_t> xb(nbox);
  std::vector<real_t> yb(nbox);
  op.scatter_from(space, x, xb);
  op.multiply(xb, yb);
  std::vector<real_t> y(n);
  op.gather_to(space, yb, y);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], y_csr[i], 1e-13 * (1.0 + std::abs(y_csr[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, StencilMultiply,
                         ::testing::Values(StencilMode::kRecompute,
                                           StencilMode::kPropensityCache),
                         [](const auto& param_info) {
                           return param_info.param == StencilMode::kRecompute
                                      ? "recompute"
                                      : "cache";
                         });

TEST(StencilOperator, CacheModeMatchesRecomputeExactly) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const auto init = core::models::futile_cycle_initial(fp);
  const StencilOperator rec(net, init, StencilMode::kRecompute);
  const StencilOperator cached(net, init, StencilMode::kPropensityCache);

  const auto n = static_cast<std::size_t>(rec.nrows());
  const auto x = random_vector(n, 7);
  std::vector<real_t> y1(n);
  std::vector<real_t> y2(n);
  rec.multiply(x, y1);
  cached.multiply(x, y2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(y1[i], y2[i]) << i;
  }
  EXPECT_EQ(rec.offdiag_nnz(), cached.offdiag_nnz());
  EXPECT_EQ(rec.inf_norm(), cached.inf_norm());
}

TEST(StencilOperator, MultiplyIsBitIdenticalAcrossThreadCounts) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const auto init = core::models::futile_cycle_initial(fp);
  for (const auto mode :
       {StencilMode::kRecompute, StencilMode::kPropensityCache}) {
    const StencilOperator op(net, init, mode);
    const auto n = static_cast<std::size_t>(op.nrows());
    const auto x = random_vector(n, 1234);
    std::vector<real_t> y1(n);
    {
      ThreadGuard tg(1);
      op.multiply(x, y1);
    }
    for (const int t : {2, 8}) {
      ThreadGuard tg(t);
      std::vector<real_t> yt(n);
      op.multiply(x, yt);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(y1[i], yt[i]) << "threads=" << t << " row " << i;
      }
    }
  }
}

// --- Jacobi parity ----------------------------------------------------------

std::vector<real_t> solve_csr(const StateSpace& space, const sparse::Csr& a) {
  CsrOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(space.size()));
  fill_uniform(p);
  JacobiOptions opt;
  opt.eps = 1e-11;
  // The futile cycle's plain-Jacobi iteration oscillates (a -1 mode);
  // the weighted variant removes it for both operators alike.
  opt.damping = 0.9;
  const auto r = jacobi_solve(op, a.inf_norm(), p, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  return p;
}

std::vector<real_t> solve_stencil(const StateSpace& space,
                                  const StencilOperator& op) {
  // Masked box rows must start (and stay) at zero: seed through scatter.
  std::vector<real_t> p0(static_cast<std::size_t>(space.size()));
  fill_uniform(p0);
  std::vector<real_t> pb(static_cast<std::size_t>(op.nrows()));
  op.scatter_from(space, p0, pb);
  JacobiOptions opt;
  opt.eps = 1e-11;
  opt.damping = 0.9;
  const auto r = jacobi_solve(op, op.inf_norm(), pb, opt);
  EXPECT_EQ(r.reason, StopReason::kConverged);
  std::vector<real_t> p(p0.size());
  op.gather_to(space, pb, p);
  return p;
}

TEST(StencilJacobi, ConvergesToCsrStationaryVector) {
  for (int model = 0; model < 2; ++model) {
    SCOPED_TRACE(model == 0 ? "toggle" : "futile");
    ReactionNetwork net;
    State init;
    if (model == 0) {
      const auto tp = tiny_toggle();
      net = core::models::toggle_switch(tp);
      init = core::models::toggle_switch_initial(tp);
    } else {
      const auto fp = tiny_futile();
      net = core::models::futile_cycle(fp);
      init = core::models::futile_cycle_initial(fp);
    }
    const StateSpace space(net, init, 100000);
    const auto a = core::rate_matrix(space);
    const auto p_csr = solve_csr(space, a);

    for (const auto mode :
         {StencilMode::kRecompute, StencilMode::kPropensityCache}) {
      const StencilOperator op(net, init, mode);
      const auto p = solve_stencil(space, op);
      EXPECT_LE(l1_distance(p, p_csr), 1e-10)
          << "model " << model << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(StencilJacobi, SolutionIsBitIdenticalAcrossThreadCounts) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const auto init = core::models::futile_cycle_initial(fp);
  const StateSpace space(net, init, 100000);
  const StencilOperator op(net, init, StencilMode::kRecompute);

  const auto run = [&](int threads) {
    ThreadGuard tg(threads);
    std::vector<real_t> p0(static_cast<std::size_t>(space.size()));
    fill_uniform(p0);
    std::vector<real_t> pb(static_cast<std::size_t>(op.nrows()));
    op.scatter_from(space, p0, pb);
    JacobiOptions opt;
    opt.eps = 0.0;
    opt.stagnation_eps = 0.0;
    opt.max_iterations = 300;
    (void)jacobi_solve(op, op.inf_norm(), pb, opt);
    return pb;
  };

  const auto p1 = run(1);
  const auto p2 = run(2);
  const auto p8 = run(8);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p2[i]) << i;
    EXPECT_EQ(p1[i], p8[i]) << i;
  }
}

// --- GMRES through the matrix-free steady-state operator --------------------

TEST(StencilGmres, MatrixFreeSteadyStateMatchesJacobi) {
  const auto tp = tiny_toggle();
  const auto net = core::models::toggle_switch(tp);
  const auto init = core::models::toggle_switch_initial(tp);
  const StateSpace space(net, init, 100000);
  const StencilOperator op(net, init);
  // The toggle box carries no masked padding; its few unreachable rows are
  // transient states, so the nonsingular-ized box system still has the
  // unique solution (stationary vector, zero on transients).
  ASSERT_EQ(op.rows_masked(), 0);

  const auto a = core::rate_matrix(space);
  const auto p_ref = solve_csr(space, a);

  const index_t row = op.nrows() - 1;
  const auto apply = matrix_free_steady_state_operator(op, row);
  const auto b = steady_state_rhs(op.nrows(), row);
  std::vector<real_t> x(static_cast<std::size_t>(op.nrows()));
  fill_uniform(x);
  GmresOptions gopt;
  gopt.restart = 60;
  gopt.max_iterations = 6000;
  gopt.tol = 1e-12;
  const auto r = gmres_solve(apply, op.nrows(), b, x, gopt);
  EXPECT_TRUE(r.converged);

  std::vector<real_t> p(x.begin(), x.end());
  normalize_l1(p);
  std::vector<real_t> p_states(static_cast<std::size_t>(space.size()));
  op.gather_to(space, p, p_states);
  EXPECT_LE(l1_distance(p_states, p_ref), 1e-8);
}

// --- MaskedStencilOperator (FSP inner solve) --------------------------------

TEST(MaskedStencil, MatchesProjectedRateMatrix) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const auto init = core::models::futile_cycle_initial(fp);

  core::DynamicStateSpace dyn(net, init);
  dyn.grow_bfs(300);  // partial cover: real out-of-set leak
  ASSERT_EQ(dyn.size(), 300);

  core::ProjectedRateMatrix prm(net);
  prm.extend(dyn);
  const auto asmbl = prm.assemble(dyn, 0);

  const StencilTable table(net, init);
  const MaskedStencilOperator mop(table, dyn, 0);

  // Per-member outflow agrees with the assembled bookkeeping.
  for (index_t j = 0; j < dyn.size(); ++j) {
    EXPECT_NEAR(mop.outflow(j), asmbl.outflow[static_cast<std::size_t>(j)],
                1e-13 * (1.0 + asmbl.outflow[static_cast<std::size_t>(j)]))
        << j;
  }

  // Same stationary vector from both inner solves.
  JacobiOptions opt;
  opt.eps = 1e-12;

  CsrOperator csr(asmbl.a);
  std::vector<real_t> p_csr(static_cast<std::size_t>(dyn.size()));
  fill_uniform(p_csr);
  const auto r1 = jacobi_solve(csr, asmbl.a.inf_norm(), p_csr, opt);
  EXPECT_EQ(r1.reason, StopReason::kConverged);

  std::vector<real_t> p0(static_cast<std::size_t>(dyn.size()));
  fill_uniform(p0);
  std::vector<real_t> pb(static_cast<std::size_t>(mop.nrows()));
  mop.scatter_from_members(p0, pb);
  const auto r2 = jacobi_solve(mop, mop.inf_norm(), pb, opt);
  EXPECT_EQ(r2.reason, StopReason::kConverged);
  std::vector<real_t> p_mop(static_cast<std::size_t>(dyn.size()));
  mop.gather_to_members(pb, p_mop);

  EXPECT_LE(l1_distance(p_mop, p_csr), 1e-10);
}

TEST(MaskedStencil, MultiplyIsBitIdenticalAcrossThreadCounts) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const auto init = core::models::futile_cycle_initial(fp);
  core::DynamicStateSpace dyn(net, init);
  dyn.grow_bfs(250);
  const StencilTable table(net, init);
  const MaskedStencilOperator mop(table, dyn, 0);

  const auto n = static_cast<std::size_t>(mop.nrows());
  const auto x = random_vector(n, 5);
  std::vector<real_t> y1(n);
  {
    ThreadGuard tg(1);
    mop.multiply(x, y1);
  }
  for (const int t : {2, 8}) {
    ThreadGuard tg(t);
    std::vector<real_t> yt(n);
    mop.multiply(x, yt);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y1[i], yt[i]) << "threads=" << t << " row " << i;
    }
  }
}

// --- error handling ---------------------------------------------------------

TEST(StencilOperator, RejectsForeignStatesInScatter) {
  const auto fp = tiny_futile();
  const auto net = core::models::futile_cycle(fp);
  const auto init = core::models::futile_cycle_initial(fp);
  const StencilOperator op(net, init);

  // A state space anchored in a different conservation class (one less
  // substrate molecule) cannot map into this box.
  auto other = init;
  other[0] -= 1;
  const StateSpace space(net, other, 100000);
  std::vector<real_t> from(static_cast<std::size_t>(space.size()), 1.0);
  std::vector<real_t> to(static_cast<std::size_t>(op.nrows()));
  EXPECT_THROW(op.scatter_from(space, from, to), std::invalid_argument);
}

}  // namespace
}  // namespace cmesolve::solver
