// Tests for the synthetic domain-matrix generators (Fig. 5 substitution).
#include <gtest/gtest.h>

#include "sparse/format_stats.hpp"
#include "synth/generators.hpp"

namespace cmesolve::synth {
namespace {

TEST(Synth, Fem2dIsTheFivePointStencil) {
  const auto m = fem_2d(10);
  EXPECT_EQ(m.nrows, 100);
  // Interior rows have 5 entries, corners 3.
  const auto f = sparse::fingerprint(m);
  EXPECT_EQ(f.row_min, 3);
  EXPECT_EQ(f.row_max, 5);
  EXPECT_DOUBLE_EQ(f.d0, 1.0);
  // Symmetric Laplacian, zero row sums.
  for (index_t r = 0; r < m.nrows; ++r) {
    real_t sum = 0;
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) sum += m.val[p];
    EXPECT_NEAR(sum, 4.0 - (m.row_length(r) - 1), 1e-12);
  }
}

TEST(Synth, Fem3dSevenPoint) {
  const auto m = fem_3d(8);
  EXPECT_EQ(m.nrows, 512);
  const auto f = sparse::fingerprint(m);
  EXPECT_EQ(f.row_max, 7);
  EXPECT_EQ(f.row_min, 4);
}

TEST(Synth, GeneratorsAreDeterministic) {
  const auto a = circuit(2000, 5);
  const auto b = circuit(2000, 5);
  EXPECT_EQ(a.val, b.val);
  EXPECT_EQ(a.col_idx, b.col_idx);
  const auto c = circuit(2000, 6);
  EXPECT_NE(a.col_idx, c.col_idx);
}

TEST(Synth, QuantumChemistryHasTheHighestLocalVariability) {
  // The Fig. 5 story: quantum chemistry's within-warp row-length spread is
  // what warp-grained slicing exploits; FEM has none.
  const auto fem = fem_2d(100);
  const auto qc = quantum_chemistry(10000, 3);
  EXPECT_GT(sparse::fingerprint(qc).variability,
            5.0 * sparse::fingerprint(fem).variability);
}

TEST(Synth, CircuitHasRareLongRails) {
  const auto m = circuit(20000, 7);
  const auto f = sparse::fingerprint(m);
  EXPECT_LT(f.row_mean, 8.0);
  EXPECT_GT(f.row_max, 15);
  EXPECT_GT(f.skew, 2.0);
}

TEST(Synth, EpidemiologyIsShortAndRegular)  {
  const auto f = sparse::fingerprint(epidemiology(20000, 9));
  EXPECT_LT(f.row_max, 6);
  EXPECT_LT(f.variability, 0.5);
}

TEST(Synth, AllRowsNonEmptyAndInBounds) {
  for (auto& d : figure5_suite(5000, 11)) {
    for (index_t r = 0; r < d.matrix.nrows; ++r) {
      ASSERT_GE(d.matrix.row_length(r), 1) << d.domain << " row " << r;
      for (index_t p = d.matrix.row_ptr[r]; p < d.matrix.row_ptr[r + 1]; ++p) {
        ASSERT_GE(d.matrix.col_idx[p], 0);
        ASSERT_LT(d.matrix.col_idx[p], d.matrix.ncols);
      }
    }
  }
}

TEST(Synth, SuiteCoversEightDomains) {
  const auto suite = figure5_suite(3000, 1);
  EXPECT_EQ(suite.size(), 8u);
  for (auto& d : suite) {
    EXPECT_FALSE(d.domain.empty());
    EXPECT_GT(d.matrix.nnz(), 0u);
  }
}

}  // namespace
}  // namespace cmesolve::synth
