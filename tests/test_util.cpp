// Unit tests for src/util: binomial coefficients, RNG, streaming stats,
// table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/binomial.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace cmesolve {
namespace {

// --- binomial --------------------------------------------------------------

TEST(Binomial, BaseCases) {
  EXPECT_EQ(binomial(0, 0), 1.0);
  EXPECT_EQ(binomial(1, 0), 1.0);
  EXPECT_EQ(binomial(1, 1), 1.0);
  EXPECT_EQ(binomial(5, 0), 1.0);
}

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(4, 2), 6.0);
  EXPECT_EQ(binomial(5, 2), 10.0);
  EXPECT_EQ(binomial(6, 3), 20.0);
  EXPECT_EQ(binomial(10, 4), 210.0);
}

TEST(Binomial, OutOfRangeIsZero) {
  EXPECT_EQ(binomial(3, 4), 0.0);
  EXPECT_EQ(binomial(-1, 1), 0.0);
  EXPECT_EQ(binomial(3, -1), 0.0);
}

TEST(Binomial, Symmetry) {
  for (int n = 0; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n, n - k)) << n << " " << k;
    }
  }
}

TEST(Binomial, PascalRecurrence) {
  for (int n = 1; n <= 40; ++n) {
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(Binomial, PropensityRegimeExact) {
  // CME propensities use small k and potentially large copy numbers.
  EXPECT_EQ(binomial(1000, 1), 1000.0);
  EXPECT_EQ(binomial(1000, 2), 1000.0 * 999.0 / 2.0);
  EXPECT_EQ(binomial(100000, 3), 100000.0 * 99999.0 * 99998.0 / 6.0);
}

TEST(FallingFactorial, MatchesDefinition) {
  EXPECT_EQ(falling_factorial(5, 0), 1.0);
  EXPECT_EQ(falling_factorial(5, 1), 5.0);
  EXPECT_EQ(falling_factorial(5, 3), 60.0);
  EXPECT_EQ(falling_factorial(2, 3), 0.0);
}

// --- RNG --------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const real_t u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Xoshiro256 rng(11);
  real_t sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

// --- RunningStats ------------------------------------------------------------

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (real_t v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-sigma example
}

TEST(RunningStats, VariabilityAndSkew) {
  RunningStats s;
  for (real_t v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.variability(), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.skew(), (9.0 - 5.0) / 5.0);
}

TEST(RunningStats, ConstantSequenceHasZeroSigma) {
  RunningStats s;
  for (int i = 0; i < 50; ++i) s.add(3.25);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.variability(), 0.0);
  EXPECT_DOUBLE_EQ(s.skew(), 0.0);
}

TEST(RunningStats, EmptyIsNaN) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStats, EmptyDerivedRatiosAreNaN) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.variability()));
  EXPECT_TRUE(std::isnan(s.skew()));
}

TEST(RunningStats, ZeroMeanRatiosAreNaNNotInf) {
  // sigma/mu and (max-mu)/mu are undefined at mu == 0; the explicit NaN
  // (instead of IEEE +/-inf from the literal division) keeps the JSON
  // serialization path uniform for both undefined cases.
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.variability()));
  EXPECT_FALSE(std::isinf(s.variability()));
  EXPECT_TRUE(std::isnan(s.skew()));
  EXPECT_FALSE(std::isinf(s.skew()));
}

// --- TextTable ----------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(-1.0, 0), "-1");
}

TEST(TextTable, CountFormatting) {
  EXPECT_EQ(TextTable::count(0), "0");
  EXPECT_EQ(TextTable::count(999), "999");
  EXPECT_EQ(TextTable::count(1000), "1,000");
  EXPECT_EQ(TextTable::count(1234567), "1,234,567");
  EXPECT_EQ(TextTable::count(-1234), "-1,234");
}

}  // namespace
}  // namespace cmesolve
