//
// Unit tests for the differential-verification subsystem: the scenario
// generator, the repro codec, the report-schema validator, the oracle
// battery's failure detection, and the shrinker.
//
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "verify/oracles.hpp"
#include "verify/report_check.hpp"
#include "verify/repro_io.hpp"
#include "verify/scenario.hpp"
#include "verify/shrink.hpp"

namespace {

using namespace cmesolve;

// -- scenario generator ------------------------------------------------------

TEST(VerifyScenario, GeneratorIsDeterministic) {
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    const auto a = verify::random_scenario(seed);
    const auto b = verify::random_scenario(seed);
    EXPECT_EQ(verify::serialize_repro(a), verify::serialize_repro(b));
  }
}

TEST(VerifyScenario, GeneratorCoversTheArchetypeFamilies) {
  std::set<std::string> seen;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const auto sc = verify::random_scenario(seed);
    seen.insert(sc.archetype);
    EXPECT_FALSE(sc.species.empty());
    EXPECT_FALSE(sc.reactions.empty());
    EXPECT_EQ(sc.initial.size(), sc.species.size());
  }
  // 64 draws over 8 families: missing more than two would mean the family
  // picker is biased or broken.
  EXPECT_GE(seen.size(), 6u);
}

TEST(VerifyScenario, ExpectationStringsRoundTrip) {
  using verify::Expectation;
  for (auto e : {Expectation::kSteadyState, Expectation::kAbsorbing,
                 Expectation::kStagnation, Expectation::kZeroResidual}) {
    EXPECT_EQ(verify::expectation_from_string(verify::to_string(e)), e);
  }
  EXPECT_THROW(verify::expectation_from_string("nonsense"),
               std::runtime_error);
}

// -- repro codec -------------------------------------------------------------

TEST(VerifyRepro, SerializeParseSerializeIsByteStable) {
  for (std::uint64_t seed : {2ull, 15ull, 28ull, 99ull}) {
    const auto sc = verify::random_scenario(seed);
    const std::string once = verify::serialize_repro(sc);
    const std::string twice =
        verify::serialize_repro(verify::parse_repro(once));
    EXPECT_EQ(once, twice) << "seed " << seed;
  }
}

TEST(VerifyRepro, ParseRejectsMalformedInput) {
  const auto sc = verify::random_scenario(3);
  std::string good = verify::serialize_repro(sc);

  EXPECT_THROW(verify::parse_repro("not json"), std::runtime_error);
  EXPECT_THROW(verify::parse_repro("{}"), std::runtime_error);

  std::string bad_schema = good;
  const auto pos = bad_schema.find("cmesolve.repro/1");
  ASSERT_NE(pos, std::string::npos);
  bad_schema.replace(pos, 16, "cmesolve.repro/9");
  EXPECT_THROW(verify::parse_repro(bad_schema), std::runtime_error);
}

TEST(VerifyRepro, ParseValidatesCrossReferences) {
  // A reaction referencing a species that does not exist must be rejected
  // at parse time, not crash the oracle battery later.
  verify::Scenario sc = verify::random_scenario(3);
  std::string text = verify::serialize_repro(sc);
  // Point every reactant/change at a wildly out-of-range species id.
  std::string broken = text;
  const auto spos = broken.find("\"species\": 0");
  ASSERT_NE(spos, std::string::npos);
  broken.replace(spos, 12, "\"species\": 99");
  EXPECT_THROW(verify::parse_repro(broken), std::runtime_error);
}

// -- run-report schema validator ---------------------------------------------

TEST(VerifyReportCheck, AcceptsTheRealReportWriter) {
  obs::set_metrics_enabled(true);
  obs::count("verify_test_counter", 3);
  std::ostringstream os;
  obs::write_report(os);
  std::string error;
  EXPECT_TRUE(verify::validate_run_report(os.str(), &error)) << error;
}

TEST(VerifyReportCheck, RejectsSchemaViolations) {
  std::string error;
  EXPECT_FALSE(verify::validate_run_report("{}", &error));
  EXPECT_FALSE(verify::validate_run_report("not json", &error));
  // Accepted schema tag but nothing else.
  EXPECT_FALSE(verify::validate_run_report(
      R"({"schema": "cmesolve.run_report/2"})", &error));
  // Unknown schema tag.
  EXPECT_FALSE(verify::validate_run_report(
      R"({"schema": "cmesolve.run_report/3"})", &error));
  // Duplicate keys: the historical provenance-drift bug class.
  EXPECT_FALSE(verify::validate_run_report(
      R"({"schema": "cmesolve.run_report/1",
          "provenance": {"version": "x", "version": "y", "git": "g",
                         "threads": 1, "openmp": true,
                         "threads_enabled": true},
          "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
          "volatile": {"counters": {}, "gauges": {}, "histograms": {}}})",
      &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  // Negative counter.
  EXPECT_FALSE(verify::validate_run_report(
      R"({"schema": "cmesolve.run_report/1",
          "provenance": {"version": "x", "git": "g", "threads": 1,
                         "openmp": true, "threads_enabled": true},
          "metrics": {"counters": {"bad": -1}, "gauges": {},
                      "histograms": {}},
          "volatile": {"counters": {}, "gauges": {}, "histograms": {}}})",
      &error));
}

TEST(VerifyReportCheck, AcceptsBothSchemaVersions) {
  // A /1 document (no perf_available, no flight) must keep validating:
  // the /2 bump is additive and old reports stay diffable.
  std::string error;
  EXPECT_TRUE(verify::validate_run_report(
      R"({"schema": "cmesolve.run_report/1",
          "provenance": {"version": "x", "git": "g", "threads": 1,
                         "openmp": true, "threads_enabled": true},
          "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
          "volatile": {"counters": {}, "gauges": {}, "histograms": {}}})",
      &error))
      << error;
  // The same document tagged /2 must fail: /2 requires perf_available.
  EXPECT_FALSE(verify::validate_run_report(
      R"({"schema": "cmesolve.run_report/2",
          "provenance": {"version": "x", "git": "g", "threads": 1,
                         "openmp": true, "threads_enabled": true},
          "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
          "volatile": {"counters": {}, "gauges": {}, "histograms": {}}})",
      &error));
  EXPECT_NE(error.find("perf_available"), std::string::npos) << error;
}

TEST(VerifyReportCheck, ValidatesTheFlightSection) {
  const auto doc = [](const char* version, const char* flight) {
    return std::string(R"({"schema": "cmesolve.run_report/)") + version +
           R"(",
          "provenance": {"version": "x", "git": "g", "threads": 1,
                         "openmp": true, "threads_enabled": true,
                         "perf_available": false},
          "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
          "volatile": {"counters": {}, "gauges": {}, "histograms": {}})" +
           flight + "}";
  };
  std::string error;
  // Well-formed flight section on /2.
  EXPECT_TRUE(verify::validate_run_report(
      doc("2", R"(, "flight": {"post_mortem": "jacobi: max iterations",
                   "capacity": 65536, "overwritten": 0,
                   "signature": "00deadbeef00cafe",
                   "events": [{"track": "jacobi.residual",
                               "kind": "residual", "iteration": 10,
                               "value": 1e-3},
                              {"track": "batch.residual",
                               "kind": "residual", "iteration": 10,
                               "lane": 3, "value": null}]})"),
      &error))
      << error;
  // Unknown event kind.
  EXPECT_FALSE(verify::validate_run_report(
      doc("2", R"(, "flight": {"post_mortem": null, "capacity": 4,
                   "overwritten": 0, "signature": "0",
                   "events": [{"track": "t", "kind": "warp-drive",
                               "iteration": 0, "value": 0}]})"),
      &error));
  EXPECT_NE(error.find("kind"), std::string::npos) << error;
  // A flight section is not part of /1.
  EXPECT_FALSE(verify::validate_run_report(
      doc("1", R"(, "flight": {"post_mortem": null, "capacity": 4,
                   "overwritten": 0, "signature": "0", "events": []})"),
      &error));
}

// -- oracle battery ----------------------------------------------------------

verify::OracleOptions cheap_options() {
  verify::OracleOptions opt;
  opt.with_fsp = false;
  opt.with_gpusim = false;
  opt.with_matrix_market = false;
  return opt;
}

TEST(VerifyOracles, PassesAHealthyScenario) {
  const auto sc = verify::random_scenario(3);  // reversible-mesh
  const auto res = verify::verify_scenario(sc, cheap_options());
  EXPECT_TRUE(res.passed);
  for (const auto& f : res.failures) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.message;
  }
}

TEST(VerifyOracles, CatchesAWrongExpectation) {
  // A healthy ergodic scenario mislabeled "absorbing" must fail the
  // absorbing-edge oracle, proving the expectation dispatch is live.
  verify::Scenario sc = verify::random_scenario(3);
  sc.expect = verify::Expectation::kAbsorbing;
  const auto res = verify::verify_scenario(sc, cheap_options());
  EXPECT_FALSE(res.passed);
  EXPECT_EQ(res.primary(), "absorbing-edge");
}

TEST(VerifyOracles, TelemetryOracleHoldsOnAHealthyScenario) {
  // Full-observability determinism: fingerprints and flight streams
  // bit-identical at 1/8 threads, recorder attach changes nothing.
  auto opt = cheap_options();
  opt.with_telemetry = true;
  const auto sc = verify::random_scenario(3);
  const auto res = verify::verify_scenario(sc, opt);
  EXPECT_TRUE(res.passed);
  for (const auto& f : res.failures) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.message;
  }
  bool ran = false;
  for (const auto& name : res.oracles_run) ran = ran || name == "telemetry";
  EXPECT_TRUE(ran) << "telemetry oracle did not run";
}

TEST(VerifyOracles, SurvivesAnUnexpectedAbsorbingState) {
  // Pure decay labeled steady-state: the battery must report the
  // zero-diagonal rejection as a failure, never crash the driver.
  verify::Scenario sc;
  sc.name = "unit-absorbing-mislabel";
  sc.archetype = "directed";
  sc.expect = verify::Expectation::kSteadyState;
  sc.species = {{"X", 4}};
  sc.initial = {4};
  sc.reactions.push_back({"decay", 1.0, {{0, 1}}, {{0, -1}}});
  const auto res = verify::verify_scenario(sc, cheap_options());
  EXPECT_FALSE(res.passed);
}

// -- shrinker ----------------------------------------------------------------

TEST(VerifyShrink, MinimizesToThePredicateCore) {
  // Predicate: "some reaction has rate > 100". The shrinker should strip
  // everything else: one species, one reaction, rounded rate, zero initial.
  verify::Scenario sc = verify::random_scenario(3);
  sc.reactions.push_back({"hot", 5000.0, {}, {{0, 1}}});
  auto pred = [](const verify::Scenario& cand) {
    for (const auto& r : cand.reactions) {
      if (r.rate > 100.0) return true;
    }
    return false;
  };
  verify::ShrinkStats stats;
  const verify::Scenario minimal =
      verify::shrink_scenario(sc, pred, {}, &stats);
  EXPECT_TRUE(pred(minimal));
  EXPECT_EQ(minimal.reactions.size(), 1u);
  EXPECT_EQ(minimal.species.size(), 1u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.attempts, stats.accepted);
}

TEST(VerifyShrink, ReturnsTheInputWhenNothingShrinks) {
  verify::Scenario sc;
  sc.name = "unit-minimal";
  sc.species = {{"X", 1}};  // capacity 1: the halving pass has no room
  sc.initial = {0};
  sc.reactions.push_back({"up", 1.0, {}, {{0, 1}}});
  const std::string before = verify::serialize_repro(sc);
  const verify::Scenario out = verify::shrink_scenario(
      sc, [](const verify::Scenario&) { return true; }, {}, nullptr);
  // Rates and initial are already minimal; reactions/species cannot drop
  // below one: the scenario must come back semantically unchanged.
  EXPECT_EQ(verify::serialize_repro(out), before);
}

}  // namespace
