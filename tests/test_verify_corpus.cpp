//
// Corpus replay: every checked-in reproducer under tests/corpus must pass
// the full oracle battery, stay byte-stable through the repro codec, solve
// bit-identically across thread counts, and (steady-state entries) keep the
// matrix-free FSP path deterministic under threading.
//
// CMESOLVE_CORPUS_DIR is injected by tests/CMakeLists.txt.
//
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/state_space.hpp"
#include "fsp/fsp.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/csr.hpp"
#include "core/rate_matrix.hpp"
#include "util/parallel.hpp"
#include "verify/oracles.hpp"
#include "verify/repro_io.hpp"
#include "verify/scenario.hpp"

namespace {

using namespace cmesolve;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(CMESOLVE_CORPUS_DIR)) {
    if (entry.is_regular_file() &&
        entry.path().string().ends_with(".repro.json")) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Restores the ambient thread cap even when an assertion fires mid-test.
struct ThreadRestore {
  ~ThreadRestore() { util::set_max_threads(0); }
};

TEST(VerifyCorpus, HasEntries) {
  // Guards against a silently-empty corpus (bad install, bad glob): the
  // replay tests below would vacuously pass.
  EXPECT_GE(corpus_files().size(), 10u);
}

TEST(VerifyCorpus, ReplayPassesFullBattery) {
  verify::OracleOptions opt;
  opt.with_threads = true;  // 1-vs-8-thread bitwise identity per scenario
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path);
    const verify::Scenario sc = verify::load_repro_file(path);
    const auto res = verify::verify_scenario(sc, opt);
    EXPECT_TRUE(res.passed);
    for (const auto& f : res.failures) {
      ADD_FAILURE() << "[" << f.oracle << "] " << f.message;
    }
  }
}

TEST(VerifyCorpus, FilesAreCanonical) {
  // parse -> serialize must reproduce the checked-in bytes exactly, so a
  // corpus diff always means a semantic change, never formatting drift.
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path);
    const std::string text = slurp(path);
    const verify::Scenario sc = verify::parse_repro(text);
    EXPECT_EQ(verify::serialize_repro(sc), text);
  }
}

TEST(VerifyCorpus, JacobiBitIdenticalAcross1_2_8Threads) {
  ThreadRestore restore;
  for (const auto& path : corpus_files()) {
    const verify::Scenario sc = verify::load_repro_file(path);
    if (sc.expect != verify::Expectation::kSteadyState) continue;
    SCOPED_TRACE(path);
    const auto net = verify::build_network(sc);
    const core::StateSpace space(net, sc.initial, sc.max_states);
    const sparse::Csr a = core::rate_matrix(space);
    const solver::CsrOperator op(a);
    const real_t norm = a.inf_norm();
    solver::JacobiOptions jopt;
    jopt.eps = sc.jacobi_eps;
    jopt.stagnation_eps = sc.jacobi_stagnation_eps;
    jopt.max_iterations = sc.jacobi_max_iterations;
    jopt.damping = sc.jacobi_damping;

    auto solve_at = [&](int threads) {
      util::set_max_threads(threads);
      std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
      solver::fill_uniform(p);
      (void)solver::jacobi_solve(op, norm, p, jopt);
      return p;
    };
    const auto p1 = solve_at(1);
    const auto p2 = solve_at(2);
    const auto p8 = solve_at(8);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(p1, p8);
  }
}

TEST(VerifyCorpus, MatrixFreeFspDeterministicAcrossThreads) {
  // FspOptions::matrix_free engages the masked stencil operator; its
  // adaptive trajectory (member sets, landscape) must not depend on the
  // thread count. Small caps keep this affordable for every entry.
  ThreadRestore restore;
  for (const auto& path : corpus_files()) {
    const verify::Scenario sc = verify::load_repro_file(path);
    if (sc.expect != verify::Expectation::kSteadyState) continue;
    SCOPED_TRACE(path);
    const auto net = verify::build_network(sc);

    fsp::FspOptions fo;
    fo.tol = 1e-8;
    fo.seed_states = 32;
    fo.max_states = 4000;
    fo.min_growth = 0.25;
    fo.solver = fsp::InnerSolver::kJacobi;
    fo.jacobi.eps = sc.jacobi_eps;
    fo.jacobi.stagnation_eps = sc.jacobi_stagnation_eps;
    fo.jacobi.max_iterations = sc.jacobi_max_iterations;
    fo.jacobi.damping = sc.jacobi_damping;
    fo.matrix_free = true;
    fo.matrix_free_box_ratio = 1e9;

    auto solve_at = [&](int threads) {
      util::set_max_threads(threads);
      return fsp::solve_adaptive(net, sc.initial, fo);
    };
    const auto r1 = solve_at(1);
    const auto r8 = solve_at(8);
    EXPECT_EQ(r1.space.size(), r8.space.size());
    EXPECT_EQ(r1.rounds.size(), r8.rounds.size());
    EXPECT_EQ(r1.converged, r8.converged);
    EXPECT_EQ(r1.p, r8.p);  // bitwise: vectors of identical doubles
  }
}

}  // namespace
