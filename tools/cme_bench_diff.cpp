//
// cme_bench_diff: the bench regression ledger's differ.
//
// Compares a fresh cmesolve.bench/1 record (emitted by any bench via
// CMESOLVE_BENCH=path) against a checked-in baseline and exits non-zero on
// regression, so CI's smoke-bench step doubles as an enforced performance
// time series. Two tolerance policies, one per section:
//
//   * "deterministic": iteration counts, residuals, modeled bytes — the
//     repo's determinism contract says these are bit-identical run-to-run,
//     so the differ compares EXACTLY by default. --rel-tol loosens this to a
//     relative band (CI uses a tiny one to absorb libm drift across distro
//     images; see DESIGN.md §14).
//   * "volatile": wall-clock and friends — compared against a ratio band
//     (--ratio, default 1.5x) in the metric's bad direction: names
//     containing "seconds"/"_s."/".time" are lower-is-better, names
//     containing "gflops"/"gbps"/"speedup"/"bandwidth" are higher-is-better,
//     anything else is advisory (printed, never fatal).
//
//   A metric present in the baseline but missing from the fresh run is a
//   regression (coverage loss); new metrics in the fresh run are fine
//   (additive growth, surfaced as info).
//
// Usage:
//   cme_bench_diff <baseline.json> <fresh.json> [--ratio R] [--rel-tol T]
//   cme_bench_diff --rebase <fresh.json> <baseline.json> [--keep-volatile]
//
// --rebase canonicalizes a fresh record into a baseline. By default it
// STRIPS the volatile section: checked-in baselines then carry only
// machine-independent numbers, so the exact compare is meaningful on any
// runner. --keep-volatile retains it for same-machine wall-clock ledgers.
//
// Exit codes: 0 clean, 1 regression, 2 usage/parse error.
//
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "verify/json_reader.hpp"

namespace {

using cmesolve::verify::JsonValue;

struct Record {
  std::string schema;
  std::map<std::string, std::string> provenance;
  std::map<std::string, double> deterministic;
  std::map<std::string, double> volatiles;
};

std::string slurp(const char* path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error(std::string("cannot open ") + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::map<std::string, double> flat_section(const JsonValue& root,
                                           const char* name) {
  std::map<std::string, double> out;
  const JsonValue* sec = root.find(name);
  if (sec == nullptr || !sec->is_object()) return out;
  for (const auto& [key, value] : sec->members) {
    if (value.is_number()) out[key] = value.number;
    // null (a non-finite double at emit time) participates as NaN: exact
    // compare then fails unless BOTH sides are null, which is what we want.
    if (value.is_null()) out[key] = std::nan("");
  }
  return out;
}

Record load(const char* path) {
  const auto root = cmesolve::verify::parse_json(slurp(path));
  if (!root.is_object()) throw std::runtime_error("record is not an object");
  Record r;
  if (const JsonValue* s = root.find("schema"); s != nullptr && s->is_string()) {
    r.schema = s->string;
  }
  if (r.schema != "cmesolve.bench/1") {
    throw std::runtime_error(std::string(path) +
                             ": schema is not cmesolve.bench/1");
  }
  if (const JsonValue* p = root.find("provenance");
      p != nullptr && p->is_object()) {
    for (const auto& [key, value] : p->members) {
      if (value.is_string()) r.provenance[key] = value.string;
    }
  }
  r.deterministic = flat_section(root, "deterministic");
  r.volatiles = flat_section(root, "volatile");
  return r;
}

enum class Direction { kLowerBetter, kHigherBetter, kAdvisory };

Direction direction_of(const std::string& name) {
  const auto has = [&name](const char* needle) {
    return name.find(needle) != std::string::npos;
  };
  if (has("seconds") || has(".time") || has("_s.") || has("latency")) {
    return Direction::kLowerBetter;
  }
  if (has("gflops") || has("gbps") || has("speedup") || has("bandwidth") ||
      has("throughput") || has("ipc")) {
    return Direction::kHigherBetter;
  }
  return Direction::kAdvisory;
}

bool exact_or_tol(double base, double fresh, double rel_tol) {
  if (std::isnan(base) && std::isnan(fresh)) return true;  // null == null
  if (std::isnan(base) || std::isnan(fresh)) return false;
  if (base == fresh) return true;  // covers +-0 and exact integers
  if (rel_tol <= 0.0) return false;
  const double denom = std::max(std::abs(base), std::abs(fresh));
  return std::abs(base - fresh) <= rel_tol * denom;
}

int run_diff(const char* base_path, const char* fresh_path, double ratio,
             double rel_tol) {
  const Record base = load(base_path);
  const Record fresh = load(fresh_path);

  int regressions = 0;
  int checked = 0;
  const auto fail = [&regressions](const char* why, const std::string& name,
                                   double b, double f) {
    std::fprintf(stderr, "REGRESSION [%s] %s: baseline %.17g, fresh %.17g\n",
                 why, name.c_str(), b, f);
    ++regressions;
  };

  for (const auto& [name, b] : base.deterministic) {
    const auto it = fresh.deterministic.find(name);
    if (it == fresh.deterministic.end()) {
      std::fprintf(stderr, "REGRESSION [coverage] %s: missing from fresh run\n",
                   name.c_str());
      ++regressions;
      continue;
    }
    ++checked;
    if (!exact_or_tol(b, it->second, rel_tol)) {
      fail("deterministic", name, b, it->second);
    }
  }
  for (const auto& [name, f] : fresh.deterministic) {
    if (base.deterministic.find(name) == base.deterministic.end()) {
      std::printf("info: new deterministic metric %s = %.17g\n", name.c_str(),
                  f);
    }
  }

  for (const auto& [name, b] : base.volatiles) {
    const auto it = fresh.volatiles.find(name);
    if (it == fresh.volatiles.end()) {
      std::fprintf(stderr, "REGRESSION [coverage] %s: missing from fresh run\n",
                   name.c_str());
      ++regressions;
      continue;
    }
    const double f = it->second;
    switch (direction_of(name)) {
      case Direction::kLowerBetter:
        ++checked;
        if (b > 0.0 && f > b * ratio) fail("slower", name, b, f);
        break;
      case Direction::kHigherBetter:
        ++checked;
        if (f > 0.0 && b > f * ratio) fail("throughput", name, b, f);
        break;
      case Direction::kAdvisory:
        std::printf("advisory: %s baseline %.6g, fresh %.6g\n", name.c_str(),
                    b, f);
        break;
    }
  }

  std::printf("%s vs %s: %d metrics checked, %d regression%s\n", base_path,
              fresh_path, checked, regressions, regressions == 1 ? "" : "s");
  return regressions > 0 ? 1 : 0;
}

/// Canonicalize a fresh record into a committable baseline: re-serialize
/// through JsonWriter (stable key order is already guaranteed — flat maps
/// come out of a std::map) and drop the volatile section unless asked.
int run_rebase(const char* fresh_path, const char* out_path,
               bool keep_volatile) {
  const Record fresh = load(fresh_path);
  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  cmesolve::obs::JsonWriter w(os, /*indent=*/2);
  w.begin_object();
  w.kv("schema", "cmesolve.bench/1");
  w.key("provenance").begin_object();
  for (const auto& [key, value] : fresh.provenance) {
    w.kv(key, std::string_view(value));
  }
  w.end_object();
  w.key("deterministic").begin_object();
  for (const auto& [name, v] : fresh.deterministic) w.kv(name, v);
  w.end_object();
  w.key("volatile").begin_object();
  if (keep_volatile) {
    for (const auto& [name, v] : fresh.volatiles) w.kv(name, v);
  }
  w.end_object();
  w.end_object();
  os << '\n';
  std::printf("rebased %s -> %s (%zu deterministic, %zu volatile)\n",
              fresh_path, out_path, fresh.deterministic.size(),
              keep_volatile ? fresh.volatiles.size() : std::size_t{0});
  return os.good() ? 0 : 2;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: cme_bench_diff <baseline.json> <fresh.json> [--ratio R] "
      "[--rel-tol T]\n"
      "       cme_bench_diff --rebase <fresh.json> <baseline.json> "
      "[--keep-volatile]\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> pos;
    double ratio = 1.5;
    double rel_tol = 0.0;
    bool rebase = false;
    bool keep_volatile = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--rebase") {
        rebase = true;
      } else if (arg == "--keep-volatile") {
        keep_volatile = true;
      } else if (arg == "--ratio" && i + 1 < argc) {
        ratio = std::atof(argv[++i]);
      } else if (arg == "--rel-tol" && i + 1 < argc) {
        rel_tol = std::atof(argv[++i]);
      } else if (!arg.empty() && arg[0] == '-') {
        usage();
        return 2;
      } else {
        pos.push_back(arg);
      }
    }
    if (pos.size() != 2 || ratio <= 1.0) {
      usage();
      return 2;
    }
    if (rebase) {
      return run_rebase(pos[0].c_str(), pos[1].c_str(), keep_volatile);
    }
    return run_diff(pos[0].c_str(), pos[1].c_str(), ratio, rel_tol);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cme_bench_diff: %s\n", e.what());
    return 2;
  }
}
