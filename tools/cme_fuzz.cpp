//
// cme_fuzz — differential-verification fuzz driver.
//
// Modes:
//   cme_fuzz --runs N [--seed S | --seed from-date]   seeded random sweep
//   cme_fuzz --replay FILE.repro.json                 replay one reproducer
//   cme_fuzz --corpus DIR                             replay a corpus tree
//
// Each scenario runs the full oracle battery (verify_scenario). A failing
// random scenario is greedily shrunk — same-primary-oracle predicate — and
// written to --out as a minimal .repro.json for triage and corpus
// promotion. Exit status is 0 only when every scenario passed AND the
// tool's own run report validates against the cmesolve.run_report schema.
//
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "verify/oracles.hpp"
#include "verify/report_check.hpp"
#include "verify/repro_io.hpp"
#include "verify/scenario.hpp"
#include "verify/shrink.hpp"

namespace {

using namespace cmesolve;

struct Args {
  std::uint64_t runs = 100;
  std::uint64_t seed = 1;
  bool seed_from_date = false;
  std::string replay;
  std::string corpus;
  std::string out = "fuzz-failures";
  std::size_t max_shrink = 2000;
  bool quick = false;          ///< skip FSP + gpusim (CI smoke lanes)
  std::uint64_t ssa_every = 8;     ///< SSA oracle sampling period (0 = off)
  std::uint64_t threads_every = 4; ///< thread-determinism period (0 = off)
  std::uint64_t ensemble_every = 2;  ///< batched-ensemble period (0 = off)
  std::uint64_t transient_every = 4;  ///< transient battery period (0 = off)
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--runs N] [--seed S|from-date] [--replay FILE]\n"
      "          [--corpus DIR] [--out DIR] [--max-shrink K] [--quick]\n"
      "          [--ssa-every N] [--threads-every N] [--ensemble-every N]\n"
      "          [--transient-every N]\n",
      argv0);
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cme_fuzz: %s needs a value\n", a.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--runs") {
      const char* v = next();
      if (v == nullptr) return false;
      args.runs = std::strtoull(v, nullptr, 10);
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "from-date") == 0) {
        args.seed_from_date = true;
      } else {
        args.seed = std::strtoull(v, nullptr, 10);
      }
    } else if (a == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      args.replay = v;
    } else if (a == "--corpus") {
      const char* v = next();
      if (v == nullptr) return false;
      args.corpus = v;
    } else if (a == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (a == "--max-shrink") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_shrink = std::strtoull(v, nullptr, 10);
    } else if (a == "--quick") {
      args.quick = true;
    } else if (a == "--ssa-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args.ssa_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--threads-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args.threads_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--ensemble-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args.ensemble_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--transient-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args.transient_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "cme_fuzz: unknown flag %s\n", a.c_str());
      usage(argv[0]);
      return false;
    }
  }
  return true;
}

/// Nightly seed: YYYYMMDD in UTC, so every run of a given day fuzzes the
/// same deterministic slice and a red nightly reproduces locally.
std::uint64_t seed_from_date() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  return static_cast<std::uint64_t>(utc.tm_year + 1900) * 10000 +
         static_cast<std::uint64_t>(utc.tm_mon + 1) * 100 +
         static_cast<std::uint64_t>(utc.tm_mday);
}

verify::OracleOptions base_options(const Args& args) {
  verify::OracleOptions opt;
  opt.with_fsp = !args.quick;
  opt.with_gpusim = !args.quick;
  return opt;
}

void print_failures(const std::string& label,
                    const verify::VerifyResult& res) {
  std::printf("FAIL %s (%zu states)\n", label.c_str(), res.states);
  for (const auto& f : res.failures) {
    std::printf("  [%s] %s\n", f.oracle.c_str(), f.message.c_str());
  }
}

/// Run + shrink one failing random scenario; returns the reproducer path.
std::string shrink_and_save(const Args& args, const verify::Scenario& sc,
                            const verify::VerifyResult& res,
                            const verify::OracleOptions& opt) {
  const std::string primary = res.primary();
  verify::ShrinkOptions sopt;
  sopt.max_attempts = args.max_shrink;
  verify::ShrinkStats stats;
  verify::Scenario minimal = verify::shrink_scenario(
      sc,
      [&](const verify::Scenario& cand) {
        return verify::verify_scenario(cand, opt).primary() == primary;
      },
      sopt, &stats);
  minimal.name = "shrunk-" + sc.name;
  std::printf(
      "  shrink: %zu attempts, %zu accepted -> %zu species, %zu reactions\n",
      stats.attempts, stats.accepted, minimal.species.size(),
      minimal.reactions.size());

  std::filesystem::create_directories(args.out);
  const std::string path =
      (std::filesystem::path(args.out) / (minimal.name + ".repro.json"))
          .string();
  if (!verify::save_repro_file(path, minimal)) {
    std::fprintf(stderr, "cme_fuzz: cannot write %s\n", path.c_str());
  } else {
    std::printf("  reproducer: %s\n", path.c_str());
  }
  return path;
}

int replay_one(const std::string& path, const verify::OracleOptions& opt) {
  verify::Scenario sc;
  try {
    sc = verify::load_repro_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cme_fuzz: %s\n", e.what());
    return 1;
  }
  const auto res = verify::verify_scenario(sc, opt);
  if (!res.passed) {
    print_failures(path + " (" + sc.name + ")", res);
    return 1;
  }
  std::printf("ok   %s (%s, %zu states, %zu oracles)\n", path.c_str(),
              sc.name.c_str(), res.states, res.oracles_run.size());
  return 0;
}

int replay_corpus(const Args& args) {
  const auto opt = base_options(args);
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(args.corpus)) {
    if (entry.is_regular_file() &&
        entry.path().string().ends_with(".repro.json")) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "cme_fuzz: no .repro.json under %s\n",
                 args.corpus.c_str());
    return 1;
  }
  int failures = 0;
  for (const auto& f : files) failures += replay_one(f, opt);
  std::printf("corpus: %zu entries, %d failures\n", files.size(), failures);
  return failures == 0 ? 0 : 1;
}

int fuzz_sweep(const Args& args) {
  const std::uint64_t base =
      args.seed_from_date ? seed_from_date() : args.seed;
  std::printf("cme_fuzz: %llu runs from seed %llu\n",
              static_cast<unsigned long long>(args.runs),
              static_cast<unsigned long long>(base));
  int failures = 0;
  for (std::uint64_t i = 0; i < args.runs; ++i) {
    const std::uint64_t seed = base + i;
    auto opt = base_options(args);
    opt.with_ssa = args.ssa_every > 0 && i % args.ssa_every == 0;
    opt.with_threads = args.threads_every > 0 && i % args.threads_every == 0;
    // Full-observability determinism rides the thread-determinism cadence:
    // both re-solve at pinned thread counts, and the telemetry oracle
    // clobbers the registry, which is fine here (the fuzz driver's own
    // report only has to stay schema-valid, not complete).
    opt.with_telemetry = opt.with_threads;
    opt.with_ensemble =
        args.ensemble_every > 0 && i % args.ensemble_every == 0;
    opt.with_transient =
        args.transient_every > 0 && i % args.transient_every == 0;
    const verify::Scenario sc = verify::random_scenario(seed);
    const auto res = verify::verify_scenario(sc, opt);
    if (res.passed) {
      if ((i + 1) % 50 == 0 || i + 1 == args.runs) {
        std::printf("  ... %llu/%llu ok\n",
                    static_cast<unsigned long long>(i + 1),
                    static_cast<unsigned long long>(args.runs));
      }
      continue;
    }
    ++failures;
    print_failures(sc.name, res);
    // Shrink with the cheapest option set that still covers the failing
    // oracle — the predicate re-runs the battery hundreds of times.
    auto shrink_opt = opt;
    shrink_opt.with_ssa =
        res.primary() == "ssa" || res.primary() == "transient-ssa";
    shrink_opt.with_transient = res.primary().rfind("transient", 0) == 0;
    shrink_opt.with_threads = res.primary() == "thread-determinism";
    shrink_opt.with_telemetry = res.primary() == "telemetry";
    shrink_opt.with_fsp = shrink_opt.with_fsp && res.primary() == "fsp-parity";
    shrink_opt.with_ensemble = res.primary() == "ensemble";
    shrink_opt.with_gpusim =
        shrink_opt.with_gpusim && res.primary() == "gpusim";
    (void)shrink_and_save(args, sc, res, shrink_opt);
  }
  std::printf("fuzz: %llu runs, %d failures\n",
              static_cast<unsigned long long>(args.runs), failures);
  return failures == 0 ? 0 : 1;
}

/// The fuzz driver doubles as the report-writer oracle (ISSUE 5 satellite):
/// after a sweep full of instrumented solves, its own run report must
/// validate against the schema.
int check_own_report() {
  std::ostringstream os;
  obs::write_report(os);
  std::string error;
  if (!verify::validate_run_report(os.str(), &error)) {
    std::fprintf(stderr, "cme_fuzz: run report schema violation: %s\n",
                 error.c_str());
    return 1;
  }
  std::printf("run report: schema ok (%zu bytes)\n", os.str().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;

  // Metrics on: the oracle battery must hold up under full instrumentation,
  // and the final report feeds the schema oracle.
  obs::set_metrics_enabled(true);
  obs::set_context("program", "cme_fuzz");

  int rc = 0;
  if (!args.replay.empty()) {
    rc = replay_one(args.replay, base_options(args));
  } else if (!args.corpus.empty()) {
    rc = replay_corpus(args);
  } else {
    rc = fuzz_sweep(args);
  }
  rc |= check_own_report();
  return rc;
}
