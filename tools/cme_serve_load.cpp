//
// cme_serve_load: closed-loop load generator for the solver daemon.
//
// Spins up an in-process serve::Controller, drives it with a Zipf-popular
// parameter-sweep workload over the built-in families (toggle switch and
// phage lambda), and prints a latency/throughput/cache summary. The same
// numbers are published into the obs registry, so CMESOLVE_REPORT /
// CMESOLVE_BENCH capture them for the schema oracle and the regression
// ledger.
//
// Usage:
//   cme_serve_load [--requests N] [--clients N] [--workers N]
//                  [--variants N] [--zipf S] [--think SECONDS]
//                  [--jitter J] [--seed N] [--queue-cap N] [--cache-cap N]
//                  [--max-dist D2] [--no-warm-start] [--deterministic]
//                  [--min-hit-rate R] [--min-warm-saving R]
//
// --deterministic pins clients=1, workers=1, think=0: the run is a
// sequential replay and every published count is bit-stable (the bench
// ledger's serve_load.tiny baseline records this mode).
//
// --min-hit-rate / --min-warm-saving turn the run into a gate: exit 1 when
// the cache hit rate falls below R, or when warm-started solves do not save
// at least fraction R of the cold mean iteration count (CI's serve smoke).
//
// Exit codes: 0 ok, 1 gate violation, 2 usage error.
//
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/report.hpp"
#include "serve/controller.hpp"
#include "serve/workload.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

namespace {

using namespace cmesolve;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--requests N] [--clients N] [--workers N]\n"
               "          [--variants N] [--zipf S] [--think SECONDS]\n"
               "          [--jitter J] [--seed N] [--queue-cap N]\n"
               "          [--cache-cap N] [--max-dist D2] [--no-warm-start]\n"
               "          [--deterministic] [--min-hit-rate R]\n"
               "          [--min-warm-saving R]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions sopt = serve::serve_options_from_env();
  serve::LoadOptions lopt;
  std::size_t nvariants = 24;
  double jitter = 0.15;
  bool deterministic = false;
  double min_hit_rate = -1.0;
  double min_warm_saving = -1.0;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(a, "--requests") == 0) {
      lopt.requests = static_cast<std::size_t>(std::atol(next()));
    } else if (std::strcmp(a, "--clients") == 0) {
      lopt.clients = std::atoi(next());
    } else if (std::strcmp(a, "--workers") == 0) {
      sopt.workers = std::atoi(next());
    } else if (std::strcmp(a, "--variants") == 0) {
      nvariants = static_cast<std::size_t>(std::atol(next()));
    } else if (std::strcmp(a, "--zipf") == 0) {
      lopt.zipf_s = std::atof(next());
    } else if (std::strcmp(a, "--think") == 0) {
      lopt.think_seconds = std::atof(next());
    } else if (std::strcmp(a, "--jitter") == 0) {
      jitter = std::atof(next());
    } else if (std::strcmp(a, "--seed") == 0) {
      lopt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(a, "--queue-cap") == 0) {
      sopt.queue_capacity = static_cast<std::size_t>(std::atol(next()));
    } else if (std::strcmp(a, "--cache-cap") == 0) {
      sopt.cache_capacity = static_cast<std::size_t>(std::atol(next()));
    } else if (std::strcmp(a, "--max-dist") == 0) {
      sopt.warm_max_dist2 = std::atof(next());
    } else if (std::strcmp(a, "--no-warm-start") == 0) {
      sopt.warm_start = false;
    } else if (std::strcmp(a, "--deterministic") == 0) {
      deterministic = true;
    } else if (std::strcmp(a, "--min-hit-rate") == 0) {
      min_hit_rate = std::atof(next());
    } else if (std::strcmp(a, "--min-warm-saving") == 0) {
      min_warm_saving = std::atof(next());
    } else {
      usage(argv[0]);
    }
  }
  if (deterministic) {
    lopt.clients = 1;
    sopt.workers = 1;
    lopt.think_seconds = 0.0;
  }
  if (lopt.requests == 0 || nvariants == 0) usage(argv[0]);

  obs::set_context("program", "cme_serve_load");
  obs::set_context("serve.workers", std::to_string(sopt.workers));
  obs::set_context("serve.clients", std::to_string(lopt.clients));
  obs::set_context("serve.requests", std::to_string(lopt.requests));
  obs::set_context("serve.variants", std::to_string(nvariants));
  obs::set_context("serve.deterministic", deterministic ? "1" : "0");

  const std::vector<serve::SweepFamily> fams =
      serve::builtin_families(nvariants, jitter, lopt.seed);

  serve::LoadReport rep;
  serve::ServeStats stats;
  {
    serve::Controller ctl(sopt);
    rep = serve::run_closed_loop(ctl, fams, lopt);
    ctl.shutdown();
    stats = ctl.stats();
  }
  serve::publish_load_report(rep, deterministic);

  TextTable t({"metric", "value"});
  t.add_row({"requests", TextTable::count(static_cast<long long>(rep.requests))});
  t.add_row({"ok", TextTable::count(static_cast<long long>(rep.ok))});
  t.add_row({"shed", TextTable::count(static_cast<long long>(rep.shed))});
  t.add_row({"failed", TextTable::count(static_cast<long long>(rep.failed))});
  t.add_row({"invalid", TextTable::count(static_cast<long long>(rep.invalid))});
  t.add_row({"cache hits", TextTable::count(static_cast<long long>(rep.cache_hits))});
  t.add_row({"hit rate", TextTable::num(rep.hit_rate, 3)});
  t.add_row({"warm starts", TextTable::count(static_cast<long long>(rep.warm_starts))});
  t.add_row({"cold solves", TextTable::count(static_cast<long long>(rep.cold_solves))});
  t.add_row({"warm mean iters", TextTable::num(rep.warm_mean_iters, 1)});
  t.add_row({"cold mean iters", TextTable::num(rep.cold_mean_iters, 1)});
  t.add_row({"p50 latency (ms)", TextTable::num(rep.p50_ms, 3)});
  t.add_row({"p99 latency (ms)", TextTable::num(rep.p99_ms, 3)});
  t.add_row({"throughput (req/s)", TextTable::num(rep.throughput_rps, 1)});
  t.add_row({"wall (s)", TextTable::num(rep.wall_seconds, 3)});
  t.add_row({"cache entries", TextTable::count(static_cast<long long>(stats.cache.entries))});
  t.add_row({"cache evictions", TextTable::count(static_cast<long long>(stats.cache.evictions))});
  t.add_row({"queue evictions", TextTable::count(static_cast<long long>(stats.queue_evicted))});
  t.add_row({"simd isa", util::simd::active_isa_name()});
  std::fputs(t.render().c_str(), stdout);

  obs::flush_outputs();

  int rc = 0;
  if (min_hit_rate >= 0.0 && rep.hit_rate < min_hit_rate) {
    std::fprintf(stderr, "GATE: hit rate %.3f below minimum %.3f\n",
                 rep.hit_rate, min_hit_rate);
    rc = 1;
  }
  if (min_warm_saving >= 0.0) {
    if (rep.warm_starts == 0 || rep.cold_solves == 0) {
      std::fprintf(stderr,
                   "GATE: warm-saving gate needs both warm (%llu) and cold "
                   "(%llu) solves\n",
                   static_cast<unsigned long long>(rep.warm_starts),
                   static_cast<unsigned long long>(rep.cold_solves));
      rc = 1;
    } else {
      const double saving = 1.0 - rep.warm_mean_iters / rep.cold_mean_iters;
      if (saving < min_warm_saving) {
        std::fprintf(stderr,
                     "GATE: warm-start iteration saving %.3f below minimum "
                     "%.3f (warm %.1f vs cold %.1f mean iters)\n",
                     saving, min_warm_saving, rep.warm_mean_iters,
                     rep.cold_mean_iters);
        rc = 1;
      }
    }
  }
  return rc;
}
